/**
 * @file
 * The data-parallel determinism headline (ISSUE 9): TreeLSTM training
 * through train::trainDataParallel produces byte-identical loss
 * curves and final parameters for R in {1, 2, 4, 8} replicas, at 1
 * and 8 host threads, under either all-reduce transport -- and the
 * overlapped schedule beats the barrier-after-backward baseline on
 * the same arithmetic. A golden comm-lane trace pins the canonical
 * emission.
 */
#include <cstring>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "data/treebank.hpp"
#include "data/vocab.hpp"
#include "models/tree_lstm.hpp"
#include "obs/trace.hpp"
#include "train/data_parallel.hpp"

namespace {

/**
 * One replica's world, built from fixed seeds so every instance --
 * and every replica of every run -- starts from identical dataset
 * and parameter bits (the Factory idiom of fault_recovery_test).
 */
class TreeLstmReplica : public train::ReplicaContext
{
  public:
    TreeLstmReplica() : device_(gpusim::DeviceSpec{}, 48u << 20)
    {
        unsetenv("VPPS_FAULT_RATE");
        unsetenv("VPPS_FAULT_SEED");
        vocab_ = std::make_unique<data::Vocab>(300, 10000);
        bank_ = std::make_unique<data::Treebank>(*vocab_, 8,
                                                 data_rng_, 7.0, 4,
                                                 10);
        bench_ = std::make_unique<models::TreeLstmModel>(
            *bank_, *vocab_, 16, 32, device_, param_rng_);
    }

    gpusim::Device& device() override { return device_; }
    models::BenchmarkModel& bench() override { return *bench_; }

  private:
    gpusim::Device device_;
    common::Rng data_rng_{121};
    common::Rng param_rng_{122};
    std::unique_ptr<data::Vocab> vocab_;
    std::unique_ptr<data::Treebank> bank_;
    std::unique_ptr<models::TreeLstmModel> bench_;
};

train::ReplicaFactory
treeLstmFactory()
{
    return [](std::size_t) {
        return std::make_unique<TreeLstmReplica>();
    };
}

train::DataParallelOptions
baseOptions(std::size_t replicas, int host_threads)
{
    train::DataParallelOptions opts;
    opts.replicas = replicas;
    opts.microbatches = 8;
    opts.microbatch_size = 2;
    opts.steps = 3;
    opts.topology =
        gpusim::Topology::uniform(8, gpusim::LinkType::NVLink);
    opts.vpps.rpw = 2;
    opts.vpps.host_threads = host_threads;
    return opts;
}

void
expectBitwiseEqual(const std::vector<float>& a,
                   const std::vector<float>& b,
                   const std::string& what)
{
    ASSERT_EQ(a.size(), b.size()) << what;
    EXPECT_EQ(
        std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0)
        << what;
}

TEST(DistDeterminism, ReplicaAndThreadCountsAreBitwiseIdentical)
{
    // Reference: one replica, one host thread.
    auto ref = train::trainDataParallel(treeLstmFactory(),
                                        baseOptions(1, 1));
    ASSERT_TRUE(ref.ok()) << ref.status().toString();
    ASSERT_TRUE(ref.value().completed)
        << ref.value().status.toString();
    ASSERT_EQ(ref.value().losses.size(), 3u);

    for (std::size_t replicas : {1u, 2u, 4u, 8u})
        for (int threads : {1, 8})
        {
            auto run = train::trainDataParallel(
                treeLstmFactory(), baseOptions(replicas, threads));
            ASSERT_TRUE(run.ok()) << run.status().toString();
            const train::DataParallelReport& rep = run.value();
            ASSERT_TRUE(rep.completed) << rep.status.toString();
            const std::string what =
                "R=" + std::to_string(replicas) +
                " threads=" + std::to_string(threads);
            expectBitwiseEqual(rep.losses, ref.value().losses,
                               what + " losses");
            expectBitwiseEqual(rep.final_params,
                               ref.value().final_params,
                               what + " params");
            EXPECT_TRUE(rep.replicas_identical) << what;
        }
}

TEST(DistDeterminism, TransportAlgorithmNeverTouchesArithmetic)
{
    auto ring_opts = baseOptions(4, 1);
    ring_opts.algo = gpusim::Collective::RingAllReduce;
    auto tree_opts = baseOptions(4, 1);
    tree_opts.algo = gpusim::Collective::TreeAllReduce;

    auto ring = train::trainDataParallel(treeLstmFactory(),
                                         ring_opts);
    auto tree = train::trainDataParallel(treeLstmFactory(),
                                         tree_opts);
    ASSERT_TRUE(ring.ok() && tree.ok());
    ASSERT_TRUE(ring.value().completed && tree.value().completed);
    expectBitwiseEqual(ring.value().losses, tree.value().losses,
                       "ring vs tree losses");
    expectBitwiseEqual(ring.value().final_params,
                       tree.value().final_params,
                       "ring vs tree params");
}

TEST(DistDeterminism, OverlapBeatsBarrierOnSameArithmetic)
{
    // PCIe makes comm expensive enough that hiding it matters.
    auto opts = baseOptions(4, 1);
    opts.topology =
        gpusim::Topology::uniform(8, gpusim::LinkType::PCIe);
    opts.overlap = true;
    auto run = train::trainDataParallel(treeLstmFactory(), opts);
    ASSERT_TRUE(run.ok()) << run.status().toString();
    const train::DataParallelReport& rep = run.value();
    ASSERT_TRUE(rep.completed);

    // Both schedules are priced on every step; the charged clock
    // follows the overlapped one.
    EXPECT_LT(rep.overlap_total_us, rep.barrier_total_us);
    EXPECT_DOUBLE_EQ(rep.total_us, rep.overlap_total_us);
    EXPECT_GT(rep.allreduce_us, 0.0);
    // Overlap hid at least part of the all-reduce under backward.
    EXPECT_LT(rep.exposed_comm_us, rep.allreduce_us);

    // And the schedule choice never touches the arithmetic.
    auto barrier_opts = opts;
    barrier_opts.overlap = false;
    auto barrier = train::trainDataParallel(treeLstmFactory(),
                                            barrier_opts);
    ASSERT_TRUE(barrier.ok());
    ASSERT_TRUE(barrier.value().completed);
    expectBitwiseEqual(rep.losses, barrier.value().losses,
                       "overlap vs barrier losses");
    expectBitwiseEqual(rep.final_params,
                       barrier.value().final_params,
                       "overlap vs barrier params");
    EXPECT_DOUBLE_EQ(barrier.value().total_us,
                     barrier.value().barrier_total_us);
}

TEST(DistDeterminism, CommLaneGoldenTraceIsThreadCountCanonical)
{
    auto runWithTrace = [](int threads) {
        obs::Tracer tracer;
        auto opts = baseOptions(2, threads);
        opts.tracer = &tracer;
        auto run =
            train::trainDataParallel(treeLstmFactory(), opts);
        EXPECT_TRUE(run.ok() && run.value().completed);
        EXPECT_EQ(tracer.dropped(), 0u);
        return tracer.canonicalText();
    };

    const std::string at1 = runWithTrace(1);
    const std::string at8 = runWithTrace(8);
    // The comm lane is canonical: byte-identical at any host thread
    // count (the golden-trace property of DESIGN.md section 4.8).
    EXPECT_EQ(at1, at8);

    // Shape of the golden stream: 4 overlap buckets plus one done
    // marker per step, all on the comm lane.
    EXPECT_NE(at1.find("comm"), std::string::npos);
    EXPECT_NE(at1.find("allreduce_bucket"), std::string::npos);
    EXPECT_NE(at1.find("allreduce_done"), std::string::npos);
    std::size_t buckets = 0;
    for (std::size_t pos = at1.find("allreduce_bucket");
         pos != std::string::npos;
         pos = at1.find("allreduce_bucket", pos + 1))
        ++buckets;
    EXPECT_EQ(buckets, 3u * 4u); // steps x buckets
}

TEST(DistDeterminism, MetricsCoverCommAndSteps)
{
    obs::MetricsRegistry metrics;
    auto opts = baseOptions(2, 1);
    opts.metrics = &metrics;
    auto run = train::trainDataParallel(treeLstmFactory(), opts);
    ASSERT_TRUE(run.ok() && run.value().completed);
    EXPECT_EQ(metrics.counter("dp.steps").value(), 3u);
    EXPECT_EQ(metrics.counter("dp.microbatches").value(), 24u);
    EXPECT_EQ(metrics.counter("comm.allreduces").value(), 3u);
    EXPECT_EQ(metrics.counter("comm.messages").value(),
              run.value().comm_messages);
    EXPECT_EQ(metrics.counter("comm.bytes_on_wire").value(),
              run.value().comm_bytes_on_wire);
}

TEST(DistDeterminism, ConfigErrorsAreStructured)
{
    // 3 replicas do not divide 8 microbatches.
    auto bad = baseOptions(3, 1);
    auto run = train::trainDataParallel(treeLstmFactory(), bad);
    ASSERT_FALSE(run.ok());
    EXPECT_EQ(run.status().code(),
              common::ErrorCode::InvalidArgument);

    // Topology smaller than the replica count.
    auto tiny = baseOptions(4, 1);
    tiny.topology =
        gpusim::Topology::uniform(2, gpusim::LinkType::NVLink);
    run = train::trainDataParallel(treeLstmFactory(), tiny);
    ASSERT_FALSE(run.ok());
    EXPECT_EQ(run.status().code(),
              common::ErrorCode::InvalidArgument);
}

} // namespace
