/** @file Unit tests for the computation-graph substrate. */
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "graph/expr.hpp"
#include "graph/level_sort.hpp"

namespace {

struct GraphRig
{
    gpusim::Device device{gpusim::DeviceSpec{}, 1u << 20};
    graph::Model model;
    graph::ParamId w, b, table;

    GraphRig()
    {
        w = model.addWeightMatrix("W", 8, 4);
        b = model.addBias("b", 8);
        table = model.addLookup("E", 10, 4);
        common::Rng rng(1);
        model.allocate(device, rng);
    }
};

TEST(Model, RegistersAndAllocatesParameters)
{
    GraphRig rig;
    EXPECT_EQ(rig.model.numParams(), 3u);
    EXPECT_EQ(rig.model.weightMatrices(),
              std::vector<graph::ParamId>{rig.w});
    EXPECT_DOUBLE_EQ(rig.model.totalWeightMatrixBytes(), 8 * 4 * 4.0);
    EXPECT_EQ(rig.model.maxWeightRowLength(), 4u);
    EXPECT_EQ(rig.model.totalScalars(), 32u + 8u + 40u);
    // Glorot init is nonzero and bounded.
    const float* v =
        rig.device.memory().data(rig.model.param(rig.w).value);
    bool any_nonzero = false;
    for (int i = 0; i < 32; ++i) {
        EXPECT_LE(std::abs(v[i]), 1.0f);
        any_nonzero |= v[i] != 0.0f;
    }
    EXPECT_TRUE(any_nonzero);
}

TEST(Model, DoubleAllocationIsFatal)
{
    GraphRig rig;
    common::Rng rng(2);
    EXPECT_EXIT(rig.model.allocate(rig.device, rng),
                testing::ExitedWithCode(1), "twice");
}

TEST(Expr, BuildersInferShapes)
{
    GraphRig rig;
    graph::ComputationGraph cg;
    auto x = graph::input(cg, {1.0f, 2.0f, 3.0f, 4.0f});
    EXPECT_EQ(x.shape(), tensor::Shape(4));
    auto y = graph::matvec(rig.model, rig.w, x);
    EXPECT_EQ(y.shape(), tensor::Shape(8));
    auto s = graph::slice(y, 2, 3);
    EXPECT_EQ(s.shape(), tensor::Shape(3));
    auto cat = graph::concat({s, s});
    EXPECT_EQ(cat.shape(), tensor::Shape(6));
    auto e = graph::lookup(cg, rig.model, rig.table, 3);
    EXPECT_EQ(e.shape(), tensor::Shape(4));
    auto l = graph::pickNegLogSoftmax(y, 5);
    EXPECT_TRUE(l.shape().isScalar());
    auto bias = graph::parameter(cg, rig.model, rig.b);
    auto sum = graph::add({y, bias});
    EXPECT_EQ(sum.shape(), tensor::Shape(8));
}

TEST(Expr, ShapeMismatchesAreFatal)
{
    GraphRig rig;
    graph::ComputationGraph cg;
    auto bad = graph::input(cg, {1.0f, 2.0f, 3.0f});
    EXPECT_EXIT(graph::matvec(rig.model, rig.w, bad),
                testing::ExitedWithCode(1), "shape mismatch");
    auto x = graph::input(cg, {1.0f, 2.0f, 3.0f, 4.0f});
    EXPECT_EXIT(graph::add({x, bad}), testing::ExitedWithCode(1),
                "shape");
    auto y = graph::matvec(rig.model, rig.w, x);
    EXPECT_EXIT(graph::slice(y, 6, 5), testing::ExitedWithCode(1),
                "out of range");
    EXPECT_EXIT(graph::pickNegLogSoftmax(y, 8),
                testing::ExitedWithCode(1), "label");
    EXPECT_EXIT(graph::lookup(cg, rig.model, rig.table, 10),
                testing::ExitedWithCode(1), "out of range");
}

TEST(Expr, ParameterKindsAreChecked)
{
    GraphRig rig;
    graph::ComputationGraph cg;
    EXPECT_EXIT(graph::parameter(cg, rig.model, rig.w),
                testing::ExitedWithCode(1), "not a bias");
    auto x = graph::input(cg, std::vector<float>(4, 0.0f));
    EXPECT_EXIT(graph::matvec(rig.model, rig.b, x),
                testing::ExitedWithCode(1), "not a weight matrix");
    EXPECT_EXIT(graph::lookup(cg, rig.model, rig.w, 0),
                testing::ExitedWithCode(1), "not an embedding");
}

TEST(LevelSort, LevelsAreMaxDepthFromLeaves)
{
    GraphRig rig;
    graph::ComputationGraph cg;
    auto a = graph::input(cg, std::vector<float>(4, 1.0f)); // level 0
    auto b = graph::matvec(rig.model, rig.w, a);            // level 1
    auto c = graph::tanh(b);                                // level 2
    auto d = graph::slice(c, 0, 4);                         // level 3
    auto e = graph::matvec(rig.model, rig.w, d);            // level 4
    auto f = graph::add({e, b});                            // level 5
    const auto levels = graph::computeLevels(cg);
    ASSERT_EQ(levels.size(), 6u);
    EXPECT_EQ(cg.node(a.id).level, 0);
    EXPECT_EQ(cg.node(f.id).level, 5);
    // Within-level independence: no node's argument shares its level.
    for (const auto& level : levels)
        for (auto id : level)
            for (auto arg : cg.node(id).args)
                EXPECT_LT(cg.node(arg).level, cg.node(id).level);
}

TEST(LevelSort, ReachabilityPrunesDeadNodes)
{
    GraphRig rig;
    graph::ComputationGraph cg;
    auto a = graph::input(cg, std::vector<float>(4, 1.0f));
    auto used = graph::matvec(rig.model, rig.w, a);
    auto dead = graph::tanh(used);
    auto loss = graph::pickNegLogSoftmax(used, 0);
    const auto live = graph::reachableFrom(cg, loss.id);
    EXPECT_TRUE(live[a.id]);
    EXPECT_TRUE(live[used.id]);
    EXPECT_TRUE(live[loss.id]);
    EXPECT_FALSE(live[dead.id]);
}

TEST(BatchSignature, GroupsCompatibleNodesOnly)
{
    GraphRig rig;
    graph::ComputationGraph cg;
    auto x1 = graph::input(cg, std::vector<float>(4, 1.0f));
    auto x2 = graph::input(cg, std::vector<float>(4, 2.0f));
    auto m1 = graph::matvec(rig.model, rig.w, x1);
    auto m2 = graph::matvec(rig.model, rig.w, x2);
    EXPECT_EQ(graph::batchSignature(cg.node(m1.id)),
              graph::batchSignature(cg.node(m2.id)))
        << "same op, same W, same shapes: batchable";

    auto t1 = graph::tanh(m1);
    EXPECT_NE(graph::batchSignature(cg.node(m1.id)),
              graph::batchSignature(cg.node(t1.id)))
        << "different ops never batch";

    auto s1 = graph::slice(m1, 0, 4);
    auto s2 = graph::slice(m2, 4, 4);
    EXPECT_NE(graph::batchSignature(cg.node(s1.id)),
              graph::batchSignature(cg.node(s2.id)))
        << "slices at different offsets are different kernels";

    auto e1 = graph::lookup(cg, rig.model, rig.table, 1);
    auto e2 = graph::lookup(cg, rig.model, rig.table, 7);
    EXPECT_EQ(graph::batchSignature(cg.node(e1.id)),
              graph::batchSignature(cg.node(e2.id)))
        << "lookup rows are data, not kernel identity";
}

TEST(ComputationGraph, InputDataIsStaged)
{
    graph::ComputationGraph cg;
    auto x = graph::input(cg, {1.0f, 2.0f});
    EXPECT_EQ(cg.inputData(x.id).size(), 2u);
    EXPECT_DOUBLE_EQ(cg.totalInputBytes(), 8.0);
    cg.clear();
    EXPECT_EQ(cg.size(), 0u);
}

TEST(ComputationGraph, ForwardReferencesPanic)
{
    graph::ComputationGraph cg;
    graph::Node n;
    n.op = graph::OpType::Tanh;
    n.args = {5}; // nonexistent
    EXPECT_DEATH(cg.addNode(std::move(n)), "forward reference");
}

} // namespace
