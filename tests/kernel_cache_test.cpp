/** @file Unit tests for the on-disk kernel cache (Section IV-F
 *  extension). */
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "common/rng.hpp"
#include "data/treebank.hpp"
#include "data/vocab.hpp"
#include "models/tree_lstm.hpp"
#include "vpps/handle.hpp"
#include "vpps/kernel_cache.hpp"

namespace {

struct CacheRig
{
    gpusim::Device device{gpusim::DeviceSpec{}, 32u << 20};
    common::Rng data_rng{61};
    data::Vocab vocab{200};
    data::Treebank bank{vocab, 8, data_rng, 8.0, 4, 12};
    common::Rng param_rng{62};
    models::TreeLstmModel model{bank, vocab, 32, 48, device,
                                param_rng};
};

struct TempDir
{
    std::string path;

    TempDir()
    {
        path = (std::filesystem::temp_directory_path() /
                ("vpps_cache_test_" +
                 std::to_string(::getpid()) + "_" +
                 std::to_string(counter++)))
                   .string();
    }

    ~TempDir() { std::filesystem::remove_all(path); }

    static int counter;
};

int TempDir::counter = 0;

TEST(KernelCache, MissThenHitRoundTripsTheKernel)
{
    CacheRig rig;
    TempDir dir;
    vpps::VppsOptions opts;
    opts.rpw = 2;
    const vpps::KernelCache cache(dir.path);

    EXPECT_FALSE(cache.load(rig.model.model(), rig.device.spec(),
                            opts, 2)
                     .has_value())
        << "cold cache must miss";

    auto plan = vpps::DistributionPlan::buildAuto(
        rig.model.model(), rig.device.spec(), opts, 2);
    const vpps::KernelSpecializer specializer(rig.device.spec());
    const auto kernel =
        specializer.specialize(rig.model.model(), plan);
    cache.store(kernel, rig.model.model(), rig.device.spec());

    const auto hit = cache.load(rig.model.model(), rig.device.spec(),
                                opts, 2);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->source, kernel.source);
    EXPECT_EQ(hit->num_instantiations, kernel.num_instantiations);
    // A hit skips program compilation but still pays module load
    // ("only intermediate PTX can be stored", Section IV-F).
    EXPECT_DOUBLE_EQ(hit->prog_compile_s, 0.0);
    EXPECT_DOUBLE_EQ(hit->module_load_s, kernel.module_load_s);
    // The rebuilt plan matches the original configuration.
    EXPECT_EQ(hit->plan.rpw(), kernel.plan.rpw());
    EXPECT_EQ(hit->plan.ctasPerSm(), kernel.plan.ctasPerSm());
}

TEST(KernelCache, KeyDependsOnShapesAndConfig)
{
    CacheRig rig;
    const auto base = vpps::KernelCache::keyFor(
        rig.model.model(), rig.device.spec(), 2, 2, true);
    EXPECT_NE(base, vpps::KernelCache::keyFor(rig.model.model(),
                                              rig.device.spec(), 3, 2,
                                              true));
    EXPECT_NE(base, vpps::KernelCache::keyFor(rig.model.model(),
                                              rig.device.spec(), 2, 1,
                                              true));
    EXPECT_NE(base, vpps::KernelCache::keyFor(rig.model.model(),
                                              rig.device.spec(), 2, 2,
                                              false));
    // Identical shape multisets share a key (instantiation sharing).
    CacheRig twin;
    EXPECT_EQ(base, vpps::KernelCache::keyFor(
                        twin.model.model(), twin.device.spec(), 2, 2,
                        true));
}

TEST(KernelCache, HandleUsesTheCacheAcrossSessions)
{
    TempDir dir;
    double cold_jit = 0.0;
    {
        CacheRig rig;
        vpps::VppsOptions opts;
        opts.rpw = 2;
        opts.kernel_cache_dir = dir.path;
        vpps::Handle handle(rig.model.model(), rig.device, opts);
        cold_jit = handle.jitSeconds();
        EXPECT_GT(cold_jit, 1.0);
    }
    {
        // "Second training session": same model shapes, fresh rig.
        CacheRig rig;
        vpps::VppsOptions opts;
        opts.rpw = 2;
        opts.kernel_cache_dir = dir.path;
        vpps::Handle handle(rig.model.model(), rig.device, opts);
        EXPECT_LT(handle.jitSeconds(), 0.5 * cold_jit)
            << "warm start pays module load only";
        EXPECT_GT(handle.jitSeconds(), 0.0);

        // The cached kernel must still train correctly.
        graph::ComputationGraph cg;
        std::vector<graph::Expr> losses;
        for (std::uint32_t i = 0; i < 2; ++i)
            losses.push_back(rig.model.buildLoss(cg, i));
        opts.async = false;
        const float loss = handle.fb(
            rig.model.model(), cg,
            graph::sumLosses(std::move(losses)));
        (void)loss;
        EXPECT_TRUE(std::isfinite(handle.sync_get_latest_loss()));
    }
}

} // namespace
