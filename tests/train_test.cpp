/** @file Unit tests for the training harness. */
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "data/treebank.hpp"
#include "data/vocab.hpp"
#include "exec/depth_batch_executor.hpp"
#include "graph/level_sort.hpp"
#include "models/rvnn.hpp"
#include "train/harness.hpp"
#include "train/sgd.hpp"
#include "vpps/handle.hpp"

namespace {

struct TrainRig
{
    gpusim::Device device{gpusim::DeviceSpec{}, 32u << 20};
    common::Rng data_rng{51};
    data::Vocab vocab{300};
    data::Treebank bank{vocab, 10, data_rng, 8.0, 4, 12};
    common::Rng param_rng{52};
    models::RvnnModel model{bank, vocab, 32, device, param_rng};
};

TEST(Harness, SuperGraphSumsOneLossPerInput)
{
    TrainRig rig;
    graph::ComputationGraph cg;
    auto loss = train::buildSuperGraph(rig.model, cg, 0, 4);
    EXPECT_TRUE(loss.shape().isScalar());
    // The loss node aggregates exactly 4 scalar losses.
    const auto& node = cg.node(loss.id);
    EXPECT_EQ(node.op, graph::OpType::AddN);
    EXPECT_EQ(node.args.size(), 4u);
    for (auto arg : node.args)
        EXPECT_EQ(cg.node(arg).op, graph::OpType::PickNLS);
}

TEST(Harness, SuperGraphWrapsAroundDataset)
{
    TrainRig rig;
    graph::ComputationGraph cg;
    // start near the end of the 10-item dataset with batch 4.
    auto loss = train::buildSuperGraph(rig.model, cg, 8, 4);
    EXPECT_TRUE(loss.shape().isScalar());
    EXPECT_GT(cg.size(), 0u);
}

TEST(Harness, ZeroBatchIsFatal)
{
    TrainRig rig;
    graph::ComputationGraph cg;
    EXPECT_DEATH(train::buildSuperGraph(rig.model, cg, 0, 0),
                 "batch");
}

TEST(Harness, MeasureExecutorReportsConsistentThroughput)
{
    TrainRig rig;
    exec::DepthBatchExecutor executor(rig.device, gpusim::HostSpec{});
    const auto r = train::measureExecutor(executor, rig.model, 8, 2);
    EXPECT_EQ(r.system, "DyNet-DB");
    EXPECT_EQ(r.batch_size, 2u);
    EXPECT_GT(r.wall_us, 0.0);
    EXPECT_NEAR(r.inputs_per_sec, 8.0 / (r.wall_us * 1e-6), 1e-6);
    EXPECT_DOUBLE_EQ(r.wall_us, r.cpu_us + r.gpu_us)
        << "baselines are synchronous";
    EXPECT_GT(r.launches, 0u);
}

TEST(Harness, MeasureVppsUsesPipelinedWallTime)
{
    TrainRig rig;
    vpps::VppsOptions opts;
    opts.rpw = 2;
    vpps::Handle handle(rig.model.model(), rig.device, opts);
    const auto r = train::measureVpps(handle, rig.model, 8, 2);
    EXPECT_EQ(r.system, "VPPS");
    EXPECT_GT(r.wall_us, 0.0);
    EXPECT_LE(r.wall_us, r.cpu_us + r.gpu_us)
        << "asynchrony must overlap host and device";
    EXPECT_TRUE(std::isfinite(r.last_loss));
}

TEST(Sgd, ConfigAppliesToModel)
{
    TrainRig rig;
    train::SgdConfig cfg{0.5f, 0.125f};
    cfg.apply(rig.model.model());
    EXPECT_FLOAT_EQ(rig.model.model().learning_rate, 0.5f);
    EXPECT_FLOAT_EQ(rig.model.model().weight_decay, 0.125f);
}

TEST(Sgd, LossTrackerStatistics)
{
    train::LossTracker t;
    EXPECT_EQ(t.count(), 0u);
    EXPECT_FLOAT_EQ(t.mean(), 0.0f);
    t.add(2.0f);
    t.add(4.0f);
    EXPECT_EQ(t.count(), 2u);
    EXPECT_FLOAT_EQ(t.first(), 2.0f);
    EXPECT_FLOAT_EQ(t.last(), 4.0f);
    EXPECT_FLOAT_EQ(t.mean(), 3.0f);
}

} // namespace
