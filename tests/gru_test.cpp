/** @file Tests for the GRU builder and BiGRU tagger -- the RNN
 *  variation the paper cites as needing no VPPS re-engineering. */
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "data/ner_corpus.hpp"
#include "data/vocab.hpp"
#include "exec/kernels.hpp"
#include "exec/naive_executor.hpp"
#include "graph/level_sort.hpp"
#include "models/bigru_tagger.hpp"
#include "models/gru.hpp"
#include "train/harness.hpp"
#include "vpps/handle.hpp"

namespace {

TEST(GruBuilder, RegistersCombinedGateTransforms)
{
    gpusim::Device device(gpusim::DeviceSpec{}, 8u << 20);
    graph::Model model;
    models::GruBuilder gru(model, "g", 8, 16);
    common::Rng rng(81);
    model.allocate(device, rng);
    // W is 3H x I, U is 3H x H, b is 3H.
    EXPECT_EQ(model.param(0).shape, tensor::Shape(48, 8));
    EXPECT_EQ(model.param(1).shape, tensor::Shape(48, 16));
    EXPECT_EQ(model.param(2).shape, tensor::Shape(48));
    EXPECT_EQ(gru.hiddenDim(), 16u);
}

TEST(GruBuilder, HiddenStateStaysBounded)
{
    // GRU state is a convex-ish mix of tanh outputs and the previous
    // state, so |h| must stay within (-1, 1) from a zero start.
    gpusim::Device device(gpusim::DeviceSpec{}, 8u << 20);
    graph::Model model;
    models::GruBuilder gru(model, "g", 4, 8);
    common::Rng rng(82);
    model.allocate(device, rng);

    graph::ComputationGraph cg;
    auto h = gru.start(cg);
    for (int t = 0; t < 6; ++t)
        h = gru.next(model, h,
                     graph::input(cg, {0.9f, -0.7f, 0.5f, -0.3f}));
    // Evaluate forward.
    const auto live = std::vector<bool>(cg.size(), true);
    exec::placeForward(device, model, cg, live);
    for (graph::NodeId id = 0; id < cg.size(); ++id)
        exec::computeNodeForward(device, model, cg, id);
    const float* out = device.memory().data(cg.node(h.id).fwd);
    for (int i = 0; i < 8; ++i) {
        EXPECT_LT(std::abs(out[i]), 1.0f);
        EXPECT_TRUE(std::isfinite(out[i]));
    }
}

struct GruRig
{
    gpusim::Device device{gpusim::DeviceSpec{}, 32u << 20};
    common::Rng data_rng{83};
    data::Vocab vocab{300, 10000};
    data::NerCorpus corpus{vocab, 10, data_rng, 8.0, 4, 12};
    common::Rng param_rng{84};
    models::BiGruTagger model{corpus, vocab, 16, 24,
                              16,     device, param_rng};
};

TEST(BiGruTagger, BuildsDynamicTrainableGraphs)
{
    GruRig rig;
    exec::NaiveExecutor executor(rig.device, gpusim::HostSpec{});
    std::set<std::size_t> sizes;
    for (std::size_t i = 0; i < 4; ++i) {
        graph::ComputationGraph cg;
        auto loss = rig.model.buildLoss(cg, i);
        sizes.insert(cg.size());
        const float v = executor.trainBatch(rig.model.model(), cg,
                                            loss);
        EXPECT_TRUE(std::isfinite(v));
        EXPECT_GT(v, 0.0f);
    }
    EXPECT_GT(sizes.size(), 1u);
}

TEST(BiGruTagger, VppsMatchesBaselineWithNoGruSpecificCode)
{
    // The portability claim, as a test: training the GRU variant
    // through the persistent kernel needs nothing beyond what the
    // LSTM apps already exercised, and produces identical math.
    GruRig vpps_rig;
    GruRig naive_rig;

    vpps::VppsOptions opts;
    opts.rpw = 2;
    opts.async = false;
    vpps::Handle handle(vpps_rig.model.model(), vpps_rig.device,
                        opts);
    exec::NaiveExecutor naive(naive_rig.device, gpusim::HostSpec{});

    for (int step = 0; step < 3; ++step) {
        graph::ComputationGraph cg_a;
        const float la = handle.fb(
            vpps_rig.model.model(), cg_a,
            train::buildSuperGraph(vpps_rig.model, cg_a,
                                   static_cast<std::size_t>(step) * 2,
                                   2));
        graph::ComputationGraph cg_b;
        const float lb = naive.trainBatch(
            naive_rig.model.model(), cg_b,
            train::buildSuperGraph(naive_rig.model, cg_b,
                                   static_cast<std::size_t>(step) * 2,
                                   2));
        EXPECT_NEAR(la, lb, 1e-3 * std::abs(la) + 1e-3)
            << "GRU through VPPS diverged at step " << step;
    }
}

TEST(BiGruTagger, WeightTrafficStillOneLoadPerBatch)
{
    GruRig rig;
    vpps::VppsOptions opts;
    opts.rpw = 2;
    vpps::Handle handle(rig.model.model(), rig.device, opts);
    rig.device.traffic().reset();
    graph::ComputationGraph cg;
    auto loss = train::buildSuperGraph(rig.model, cg, 0, 2);
    handle.fb(rig.model.model(), cg, loss);
    EXPECT_NEAR(rig.device.traffic().loadBytes(
                    gpusim::MemSpace::Weights),
                rig.model.model().totalWeightMatrixBytes(), 1.0);
}

} // namespace
