/** @file Unit tests for the profile-guided tuner (Section III-A1)
 *  and the host/device asynchrony pipeline (Section III-C1). */
#include <gtest/gtest.h>

#include "vpps/pipeline.hpp"
#include "vpps/tuner.hpp"

namespace {

TEST(Tuner, ClimbsWhileImprovingAndStopsOnDegradation)
{
    vpps::ProfileGuidedTuner tuner(/*max_rpw=*/8,
                                   /*batches_per_candidate=*/2);
    // rpw 1 measures 100us, rpw 2 measures 80us, rpw 3 degrades.
    const double means[] = {100.0, 80.0, 90.0};
    for (double m : means) {
        ASSERT_FALSE(tuner.done());
        tuner.record(m);
        tuner.record(m);
    }
    ASSERT_TRUE(tuner.done());
    EXPECT_EQ(tuner.result().best_rpw, 2);
    ASSERT_EQ(tuner.result().profile.size(), 3u);
    EXPECT_EQ(tuner.result().profile[1].first, 2);
    EXPECT_DOUBLE_EQ(tuner.result().profile[1].second, 80.0);
    // Once done, the candidate stays locked.
    EXPECT_EQ(tuner.candidate(), 2);
    tuner.record(1.0);
    EXPECT_EQ(tuner.candidate(), 2);
}

TEST(Tuner, RunsToMaxRpwWhenMonotonicallyImproving)
{
    vpps::ProfileGuidedTuner tuner(3, 1);
    tuner.record(30.0);
    tuner.record(20.0);
    EXPECT_FALSE(tuner.done());
    tuner.record(10.0);
    ASSERT_TRUE(tuner.done());
    EXPECT_EQ(tuner.result().best_rpw, 3);
}

TEST(Tuner, AveragesOverConfiguredBatchCount)
{
    vpps::ProfileGuidedTuner tuner(4, 3);
    tuner.record(10.0);
    tuner.record(20.0);
    EXPECT_EQ(tuner.candidate(), 1) << "still measuring candidate 1";
    tuner.record(30.0);
    EXPECT_EQ(tuner.candidate(), 2);
    EXPECT_FALSE(tuner.done());
}

TEST(Tuner, SingleCandidateIsImmediatelyDone)
{
    vpps::ProfileGuidedTuner tuner(1);
    EXPECT_TRUE(tuner.done());
    EXPECT_EQ(tuner.result().best_rpw, 1);
}

TEST(Pipeline, SynchronousSumsBothStages)
{
    vpps::AsyncPipeline pipe(/*async=*/false);
    pipe.submit({100.0, 50.0});
    pipe.submit({100.0, 50.0});
    EXPECT_DOUBLE_EQ(pipe.makespanUs(), 300.0);
}

TEST(Pipeline, AsyncOverlapsCpuWithGpu)
{
    vpps::AsyncPipeline pipe(/*async=*/true);
    // GPU-bound: cpu 40, gpu 100 each. After the first batch fills
    // the pipe, per-batch cost approaches max(cpu, gpu) = 100.
    for (int i = 0; i < 10; ++i)
        pipe.submit({40.0, 100.0});
    EXPECT_DOUBLE_EQ(pipe.makespanUs(), 40.0 + 10 * 100.0);
}

TEST(Pipeline, AsyncDegeneratesToCpuBoundWhenHostSlower)
{
    vpps::AsyncPipeline pipe(true);
    for (int i = 0; i < 4; ++i)
        pipe.submit({100.0, 10.0});
    // CPU never waits on the device; last kernel tail remains.
    EXPECT_DOUBLE_EQ(pipe.makespanUs(), 4 * 100.0 + 10.0);
}

TEST(Pipeline, SyncDrainsTheDevice)
{
    vpps::AsyncPipeline pipe(true);
    pipe.submit({10.0, 100.0});
    EXPECT_LT(pipe.cpuClockUs(), pipe.makespanUs());
    pipe.sync();
    EXPECT_DOUBLE_EQ(pipe.cpuClockUs(), pipe.makespanUs());
}

TEST(Pipeline, OfflineHelperMatchesOnlineAccounting)
{
    const std::vector<vpps::BatchTiming> batches = {
        {50, 70}, {90, 30}, {20, 80}};
    vpps::AsyncPipeline pipe(true);
    for (const auto& b : batches)
        pipe.submit(b);
    EXPECT_DOUBLE_EQ(vpps::pipelineMakespanUs(batches, true),
                     pipe.makespanUs());
    EXPECT_GT(vpps::pipelineMakespanUs(batches, false),
              vpps::pipelineMakespanUs(batches, true));
}

TEST(Pipeline, ResetClearsClocks)
{
    vpps::AsyncPipeline pipe(true);
    pipe.submit({10, 10});
    pipe.reset();
    EXPECT_DOUBLE_EQ(pipe.makespanUs(), 0.0);
    EXPECT_DOUBLE_EQ(pipe.cpuClockUs(), 0.0);
}

} // namespace
