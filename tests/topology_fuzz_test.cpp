/**
 * @file
 * Fuzz and regression suite for the topology config parser (ISSUE
 * 9). Topologies arrive as text a user (or a bench sweep script)
 * wrote, so Topology::parse must reject every malformed input with a
 * structured InvalidArgument -- malformed link specs, out-of-range
 * ids, self-links, zero-bandwidth links, cyclic or broken routes,
 * duplicate directives, integer overflow, bad rack assignments,
 * inconsistent link fault schedules -- and never panic or run away
 * on arbitrary bytes. Mirrors the durable_fuzz_test pattern:
 * promoted regressions first, then seeded random fuzzing over a
 * grammar-aware token soup.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "gpusim/topology.hpp"

namespace {

using common::ErrorCode;
using gpusim::Topology;

void
expectRejected(const std::string& text, const std::string& why)
{
    auto parsed = Topology::parse(text);
    ASSERT_FALSE(parsed.ok()) << why << "\nconfig:\n" << text;
    EXPECT_EQ(parsed.status().code(), ErrorCode::InvalidArgument)
        << why;
    // Structured diagnostics, not just a code: the message names the
    // offending line for every line-level error.
    if (text.find('\n') != std::string::npos)
    {
        EXPECT_NE(parsed.status().toString().find("line"),
                  std::string::npos)
            << why << ": " << parsed.status().toString();
    }
}

/**
 * Every malformed shape the parser has been taught to reject, kept
 * as promoted regressions so a refactor cannot silently readmit one.
 */
TEST(TopologyFuzz, PromotedRegressions)
{
    // Missing / malformed device directive.
    expectRejected("", "empty config");
    expectRejected("link 0 1 nvlink\n", "link before devices");
    expectRejected("devices\n", "devices without a count");
    expectRejected("devices 0\n", "zero devices");
    expectRejected("devices -3\n", "negative devices");
    expectRejected("devices 2 extra\n", "trailing junk");
    expectRejected("devices 4\ndevices 4\n", "duplicate devices");
    expectRejected("devices 99999999\n", "absurd device count");
    expectRejected("devices 18446744073709551616\n",
                   "uint64 overflow");

    // Malformed link specs.
    expectRejected("devices 2\nlink 0 1\n", "link without a type");
    expectRejected("devices 2\nlink 0 1 warp\n",
                   "unknown link type");
    expectRejected("devices 2\nlink 0 2 nvlink\n",
                   "endpoint out of range");
    expectRejected("devices 2\nlink 1 1 nvlink\n", "self-link");
    expectRejected("devices 2\nlink a b nvlink\n",
                   "non-numeric endpoints");
    expectRejected("devices 2\nlink 0 1 pcie bytes_per_us=0\n",
                   "zero-bandwidth link");
    expectRejected("devices 2\nlink 0 1 pcie latency_ns=\n",
                   "empty option value");
    expectRejected("devices 2\nlink 0 1 pcie latency\n",
                   "option without =");
    expectRejected("devices 2\nlink 0 1 pcie color=3\n",
                   "unknown option");
    expectRejected(
        "devices 2\nlink 0 1 nvlink\nlink 1 0 nvlink\n",
        "duplicate link (either direction)");
    expectRejected("devices 2\nlink 0 1 nvlink latency_ns=-5\n",
                   "negative option value");

    // Malformed routes.
    expectRejected("devices 3\nroute 0 2 via 1\n",
                   "route over a missing link");
    expectRejected("devices 3\nlink 0 1 nvlink\nroute 0 1\n",
                   "route without via");
    expectRejected(
        "devices 3\nlink 0 1 nvlink\nlink 1 2 nvlink\n"
        "route 0 2 via\n",
        "via with no hops");
    expectRejected(
        "devices 3\nlink 0 1 nvlink\nlink 1 2 nvlink\n"
        "route 0 0 via 1\n",
        "route to self");
    expectRejected(
        "devices 4\nlink 0 1 nvlink\nlink 1 2 nvlink\n"
        "link 2 3 nvlink\nroute 0 3 via 1 1\n",
        "cyclic route: hop repeats");
    expectRejected(
        "devices 3\nlink 0 1 nvlink\nlink 1 2 nvlink\n"
        "route 0 2 via 0\n",
        "cyclic route: endpoint as hop");
    expectRejected(
        "devices 3\nlink 0 1 nvlink\nlink 1 2 nvlink\n"
        "route 0 2 via 9\n",
        "route hop out of range");
    expectRejected(
        "devices 3\nlink 0 1 nvlink\nlink 1 2 nvlink\n"
        "route 0 2 via 1\nroute 2 0 via 1\n",
        "duplicate route (either direction)");

    // Malformed rack assignments.
    expectRejected("rack 1 0\n", "rack before devices");
    expectRejected("devices 2\nrack 1\n", "rack without members");
    expectRejected("devices 2\nrack x 0\n",
                   "non-numeric rack id");
    expectRejected("devices 2\nrack 1 z\n",
                   "non-numeric rack member");
    expectRejected("devices 2\nrack 1 5\n",
                   "rack member out of range");
    expectRejected("devices 2\nrack 1 0\nrack 2 0\n",
                   "device assigned to two racks");
    expectRejected("devices 2\nrack 99999999999 0\n",
                   "absurd rack id");

    // Malformed link fault schedules.
    expectRejected("linkfault 0 1 down_at_us=5\n",
                   "linkfault before devices");
    expectRejected("devices 2\nlink 0 1 nvlink\nlinkfault 0 1\n",
                   "linkfault without options");
    expectRejected("devices 2\nlinkfault 0 1 down_at_us=5\n",
                   "linkfault on missing link");
    expectRejected(
        "devices 2\nlink 0 1 nvlink\nlinkfault 0 0 down_at_us=5\n",
        "linkfault self-pair");
    expectRejected(
        "devices 2\nlink 0 1 nvlink\nlinkfault 0 9 down_at_us=5\n",
        "linkfault endpoint out of range");
    expectRejected(
        "devices 2\nlink 0 1 nvlink\nlinkfault a b down_at_us=5\n",
        "linkfault non-numeric endpoints");
    expectRejected(
        "devices 2\nlink 0 1 nvlink\nlinkfault 0 1 down_at_us\n",
        "linkfault option without =");
    expectRejected(
        "devices 2\nlink 0 1 nvlink\nlinkfault 0 1 down_at_us=x\n",
        "linkfault non-numeric value");
    expectRejected(
        "devices 2\nlink 0 1 nvlink\nlinkfault 0 1 color=3\n",
        "unknown linkfault option");
    expectRejected(
        "devices 2\nlink 0 1 nvlink\nlinkfault 0 1 down_for_us=5\n",
        "down_for_us without down_at_us");
    expectRejected("devices 2\nlink 0 1 nvlink\n"
                   "linkfault 0 1 degrade_for_us=5\n",
                   "degrade window without degrade_at_us");
    expectRejected("devices 2\nlink 0 1 nvlink\n"
                   "linkfault 0 1 degrade_at_us=5\n",
                   "degrade_at_us without a factor >= 2");
    expectRejected("devices 2\nlink 0 1 nvlink\n"
                   "linkfault 0 1 degrade_at_us=5 degrade_factor=1\n",
                   "degrade_factor below 2");
    expectRejected("devices 2\nlink 0 1 nvlink\n"
                   "linkfault 0 1 loss_ppm=0\n",
                   "zero loss_ppm (would not round-trip)");
    expectRejected("devices 2\nlink 0 1 nvlink\n"
                   "linkfault 0 1 loss_ppm=1000001\n",
                   "loss_ppm above one million");
    expectRejected(
        "devices 2\nlink 0 1 nvlink\n"
        "linkfault 0 1 down_at_us=5 down_at_us=9\n",
        "duplicate linkfault option");

    // Unknown directives.
    expectRejected("devices 2\nnode 0\n", "unknown directive");
}

TEST(TopologyFuzz, ValidRackAndLinkFaultDirectivesParse)
{
    auto ok = Topology::parse(
        "devices 4\n"
        "link 0 1 nvlink\n"
        "link 1 2 pcie\n"
        "rack 1 0 1\n"
        "rack 2 2 3\n"
        "linkfault 0 1 down_at_us=100 down_for_us=50\n"
        "linkfault 1 2 degrade_at_us=10 degrade_for_us=20 "
        "degrade_factor=4 loss_ppm=2500\n");
    ASSERT_TRUE(ok.ok()) << ok.status().toString();
    const Topology& topo = ok.value();
    EXPECT_EQ(topo.rackOf(0), 1u);
    EXPECT_TRUE(topo.sameRack(0, 1));
    EXPECT_FALSE(topo.sameRack(1, 2));
    ASSERT_EQ(topo.linkFaults().size(), 2u);
    EXPECT_DOUBLE_EQ(topo.linkFaults()[0].down_at_us, 100.0);
    EXPECT_DOUBLE_EQ(topo.linkFaults()[1].loss_rate, 2500e-6);
    // describe() must round-trip both directives bitwise.
    auto again = Topology::parse(topo.describe());
    ASSERT_TRUE(again.ok()) << again.status().toString();
    EXPECT_EQ(again.value().describe(), topo.describe());
}

TEST(TopologyFuzz, ValidConfigsStillParse)
{
    // The rejection net must not catch well-formed input.
    auto ok = Topology::parse(
        "# full config\n"
        "devices 4\n"
        "link 0 1 nvlink\n"
        "link 1 2 pcie latency_ns=4000 bytes_per_us=11000\n"
        "link 2 3 nic\n"
        "route 0 2 via 1\n"
        "route 0 3 via 1 2\n"
        "\n");
    ASSERT_TRUE(ok.ok()) << ok.status().toString();
    EXPECT_EQ(ok.value().numDevices(), 4u);
    EXPECT_EQ(ok.value().route(0, 3).size(), 4u);
}

/**
 * Grammar-aware token soup: random directives with mostly-plausible
 * and occasionally hostile tokens. The parser must return ok or a
 * structured InvalidArgument -- never crash, hang, or allocate
 * unboundedly -- and every accepted topology must satisfy its own
 * invariants (positive bandwidth everywhere, usable routes).
 */
TEST(TopologyFuzz, SeededRandomFuzzNeverCrashes)
{
    common::Rng rng{0xD15717EE};
    const char* types[] = {"nvlink", "pcie", "nic", "warp", ""};
    const char* keys[] = {"latency_ns",    "bytes_per_us",
                          "color",         "down_at_us",
                          "down_for_us",   "degrade_at_us",
                          "degrade_for_us", "degrade_factor",
                          "loss_ppm",      ""};

    auto token = [&]() -> std::string {
        switch (rng.nextInt(0, 5))
        {
            case 0: return std::to_string(rng.nextInt(0, 9));
            case 1: return std::to_string(rng.nextInt(-2, 600));
            case 2: return types[rng.nextBelow(5)];
            case 3:
                return std::string(keys[rng.nextBelow(10)]) + "=" +
                       std::to_string(rng.nextInt(-1, 1 << 20));
            case 4: return "via";
            default: return "18446744073709551616";
        }
    };

    int accepted = 0;
    for (int trial = 0; trial < 2000; ++trial)
    {
        std::string text;
        if (rng.nextBernoulli(0.9))
            text += "devices " +
                    std::to_string(rng.nextInt(1, 9)) + "\n";
        const int lines = rng.nextInt(0, 8);
        for (int l = 0; l < lines; ++l)
        {
            switch (rng.nextInt(0, 5))
            {
                case 0: text += "link"; break;
                case 1: text += "route"; break;
                case 2: text += "devices"; break;
                case 3: text += "rack"; break;
                case 4: text += "linkfault"; break;
                default: text += token(); break;
            }
            const int toks = rng.nextInt(0, 6);
            for (int t = 0; t < toks; ++t) text += " " + token();
            text += rng.nextBernoulli(0.1) ? " # tail\n" : "\n";
        }

        auto parsed = Topology::parse(text);
        if (!parsed.ok())
        {
            EXPECT_EQ(parsed.status().code(),
                      ErrorCode::InvalidArgument)
                << text;
            continue;
        }
        ++accepted;
        const Topology& topo = parsed.value();
        ASSERT_GE(topo.numDevices(), 1u) << text;
        for (const gpusim::LinkFault& f : topo.linkFaults())
        {
            // Accepted schedules must satisfy their own invariants:
            // real endpoints on a real link, loss in (0, 1], degrade
            // factors that actually divide bandwidth.
            EXPECT_NE(topo.link(f.a, f.b), nullptr) << text;
            EXPECT_GE(f.loss_rate, 0.0) << text;
            EXPECT_LE(f.loss_rate, 1.0) << text;
            if (f.degrade_at_us >= 0.0)
                EXPECT_GE(f.degrade_factor, 2u) << text;
        }
        for (std::size_t a = 0; a < topo.numDevices(); ++a)
            for (std::size_t b = 0; b < topo.numDevices(); ++b)
                if (const gpusim::LinkSpec* link = topo.link(a, b))
                {
                    EXPECT_GT(link->bytes_per_us, 0u) << text;
                    // transferNs on a linked pair must succeed.
                    EXPECT_TRUE(topo.transferNs(a, b, 4096).ok())
                        << text;
                }
    }
    // The soup must exercise the accept path too, or the invariant
    // checks above are vacuous.
    EXPECT_GT(accepted, 50);
}

} // namespace
