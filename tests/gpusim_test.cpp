/** @file Unit tests for the GPU simulator substrate. */
#include <gtest/gtest.h>

#include "gpusim/cost_model.hpp"
#include "gpusim/device.hpp"
#include "gpusim/faults.hpp"
#include "gpusim/persistent_sim.hpp"

namespace {

using gpusim::DeviceSpec;
using gpusim::KernelCost;
using gpusim::MemSpace;

TEST(DeviceMemory, BumpAllocatesSequentially)
{
    gpusim::DeviceMemory mem(1024);
    const auto a = mem.allocate(100, MemSpace::Weights);
    const auto b = mem.allocate(50, MemSpace::Activations);
    EXPECT_EQ(a, 0u);
    EXPECT_EQ(b, 100u);
    EXPECT_EQ(mem.used(), 150u);
}

TEST(DeviceMemory, AllocationsAreZeroed)
{
    gpusim::DeviceMemory mem(256);
    const auto a = mem.allocate(64, MemSpace::Activations);
    mem.data(a)[3] = 7.0f;
    mem.resetTo(a);
    const auto b = mem.allocate(64, MemSpace::Activations);
    EXPECT_EQ(b, a);
    EXPECT_EQ(mem.data(b)[3], 0.0f)
        << "recycled region must be re-zeroed";
}

TEST(DeviceMemory, ResetToRollsBackFrontier)
{
    gpusim::DeviceMemory mem(256);
    mem.allocate(10, MemSpace::Weights);
    const auto mark = mem.mark();
    mem.allocate(100, MemSpace::Activations);
    mem.resetTo(mark);
    EXPECT_EQ(mem.used(), 10u);
}

TEST(DeviceMemory, ExhaustionIsFatal)
{
    gpusim::DeviceMemory mem(100);
    EXPECT_EXIT(mem.allocate(101, MemSpace::Weights),
                testing::ExitedWithCode(1), "exhausted");
}

TEST(TrafficStats, TracksPerSpaceAndTotals)
{
    gpusim::TrafficStats t;
    t.addLoad(MemSpace::Weights, 100.0);
    t.addLoad(MemSpace::Activations, 50.0);
    t.addStore(MemSpace::ActGrads, 25.0);
    EXPECT_DOUBLE_EQ(t.loadBytes(MemSpace::Weights), 100.0);
    EXPECT_DOUBLE_EQ(t.totalLoadBytes(), 150.0);
    EXPECT_DOUBLE_EQ(t.totalStoreBytes(), 25.0);
    gpusim::TrafficStats u;
    u.addLoad(MemSpace::Weights, 1.0);
    u.merge(t);
    EXPECT_DOUBLE_EQ(u.loadBytes(MemSpace::Weights), 101.0);
    u.reset();
    EXPECT_DOUBLE_EQ(u.totalLoadBytes(), 0.0);
}

TEST(CostModel, MemoryBoundKernelScalesWithBytes)
{
    DeviceSpec spec;
    KernelCost small, big;
    small.dram_load_bytes = 1e6;
    small.parallel_threads = spec.saturation_threads;
    big = small;
    big.dram_load_bytes = 2e6;
    const double t1 = gpusim::kernelBodyUs(spec, small);
    const double t2 = gpusim::kernelBodyUs(spec, big);
    EXPECT_GT(t2, t1);
    // At saturation, doubling bytes roughly doubles the transfer
    // component.
    const double latency = spec.dram_latency_ns * 1e-3;
    EXPECT_NEAR((t2 - latency) / (t1 - latency), 2.0, 0.01);
}

TEST(CostModel, SmallKernelsAreDerated)
{
    DeviceSpec spec;
    KernelCost cost;
    cost.dram_load_bytes = 1e5;
    cost.parallel_threads = 256; // one CTA's worth
    const double small = gpusim::kernelBodyUs(spec, cost);
    cost.parallel_threads = spec.saturation_threads;
    const double saturated = gpusim::kernelBodyUs(spec, cost);
    EXPECT_GT(small, 10.0 * saturated)
        << "underutilized kernels must run far below peak rates";
}

TEST(CostModel, RooflineTakesMaxOfComputeAndMemory)
{
    DeviceSpec spec;
    KernelCost compute_bound;
    compute_bound.flops = 1e9;
    compute_bound.parallel_threads = spec.saturation_threads;
    KernelCost both = compute_bound;
    both.dram_load_bytes = 1e3; // negligible
    EXPECT_NEAR(gpusim::kernelBodyUs(spec, compute_bound),
                gpusim::kernelBodyUs(spec, both), 1e-6);
}

TEST(Device, LaunchChargesOverheadAndCountsLaunches)
{
    gpusim::Device device(DeviceSpec{}, 1024);
    KernelCost empty;
    empty.latency_hops = 0.0;
    const double d = device.launchKernel(empty);
    EXPECT_DOUBLE_EQ(d, device.spec().kernel_launch_us);
    EXPECT_EQ(device.numLaunches(), 1u);
    EXPECT_DOUBLE_EQ(device.busyUs(), d);
    device.resetStats();
    EXPECT_EQ(device.numLaunches(), 0u);
    EXPECT_DOUBLE_EQ(device.busyUs(), 0.0);
}

TEST(PersistentSim, BarrierReleasesAtLastSignaler)
{
    DeviceSpec spec;
    gpusim::PersistentSim sim(spec, 4, 1);
    sim.setExpectedSignals(0, 2);
    sim.charge(0, 10.0);
    sim.charge(1, 50.0);
    sim.signal(0, 0);
    EXPECT_FALSE(sim.barrierReady(0));
    sim.signal(0, 1);
    ASSERT_TRUE(sim.barrierReady(0));
    sim.wait(0, 2);
    // VPP 2 must not resume before the slowest signaler (VPP 1 at
    // ~50us) plus the wait overhead.
    EXPECT_GE(sim.timeOf(2), 50.0 + spec.barrier_wait_us);
}

TEST(PersistentSim, WaitDoesNotRewindFastVpps)
{
    DeviceSpec spec;
    gpusim::PersistentSim sim(spec, 2, 1);
    sim.setExpectedSignals(0, 1);
    sim.signal(0, 0);
    sim.charge(1, 1e6); // already far past the release
    const double before = sim.timeOf(1);
    sim.wait(0, 1);
    EXPECT_DOUBLE_EQ(sim.timeOf(1), before);
}

TEST(PersistentSim, MakespanIsMaxOverVpps)
{
    DeviceSpec spec;
    gpusim::PersistentSim sim(spec, 3, 2);
    sim.charge(0, 5.0);
    sim.charge(1, 9.0);
    sim.charge(2, 7.0);
    EXPECT_DOUBLE_EQ(sim.makespan(), 9.0);
    EXPECT_DOUBLE_EQ(sim.meanVppTime(), 7.0);
}

TEST(PersistentSim, OverSignalingPanics)
{
    DeviceSpec spec;
    gpusim::PersistentSim sim(spec, 2, 1);
    sim.setExpectedSignals(0, 1);
    sim.signal(0, 0);
    EXPECT_DEATH(sim.signal(0, 1), "over-signaled");
}

TEST(PersistentSim, VppInstructionSharesSmBetweenCtas)
{
    DeviceSpec spec;
    KernelCost cost;
    cost.flops = 1e6;
    cost.latency_hops = 0.0;
    const double one = gpusim::vppInstructionUs(spec, cost, 1, 80);
    const double two = gpusim::vppInstructionUs(spec, cost, 2, 160);
    EXPECT_NEAR(two / one, 2.0, 1e-9)
        << "two CTAs sharing an SM each get half its compute rate";
}

TEST(HostSpec, WorkingSetFactorGrowsPastThreshold)
{
    gpusim::HostSpec host;
    EXPECT_DOUBLE_EQ(host.workingSetFactor(100), 1.0);
    const double f1 = host.workingSetFactor(
        static_cast<std::size_t>(host.cache_friendly_nodes) * 2);
    const double f2 = host.workingSetFactor(
        static_cast<std::size_t>(host.cache_friendly_nodes) * 8);
    EXPECT_GT(f1, 1.0);
    EXPECT_NEAR(f2 - f1, 2.0 * host.cache_degradation_per_doubling,
                1e-9);
}

TEST(FaultDomains, WedgeTriggersAtScheduledInstantAndLogsOnce)
{
    gpusim::FaultPlan plan;
    plan.wedge_at_us = 100.0;
    gpusim::FaultInjector inj(plan);
    EXPECT_FALSE(inj.deviceWedged(0.0));
    EXPECT_FALSE(inj.deviceWedged(99.9));
    EXPECT_EQ(inj.injected().device_wedges, 0u);
    EXPECT_TRUE(inj.deviceWedged(100.0));
    EXPECT_TRUE(inj.deviceWedged(5000.0));
    EXPECT_EQ(inj.injected().device_wedges, 1u)
        << "a permanent wedge is one event, not one per query";
}

TEST(FaultDomains, StallPenaltyIsRemainderOfWindow)
{
    gpusim::FaultPlan plan;
    plan.stall_at_us = 50.0;
    plan.stall_duration_us = 30.0;
    gpusim::FaultInjector inj(plan);
    EXPECT_DOUBLE_EQ(inj.stallPenaltyUs(0.0), 0.0);
    EXPECT_DOUBLE_EQ(inj.stallPenaltyUs(50.0), 30.0);
    EXPECT_DOUBLE_EQ(inj.stallPenaltyUs(70.0), 10.0);
    EXPECT_DOUBLE_EQ(inj.stallPenaltyUs(80.0), 0.0)
        << "the window end is exclusive";
    EXPECT_EQ(inj.injected().device_stalls, 1u)
        << "one scheduled stall logs once across all queries";
}

TEST(FaultDomains, SmDisableFiresExactlyOnce)
{
    gpusim::FaultPlan plan;
    plan.sm_disable_at_us = 10.0;
    plan.sm_disable_count = 8;
    gpusim::FaultInjector inj(plan);
    EXPECT_EQ(inj.smsToDisable(9.0), 0);
    EXPECT_EQ(inj.smsToDisable(10.0), 8);
    EXPECT_EQ(inj.smsToDisable(11.0), 0)
        << "the caller applies the shrink once; later queries no-op";
    EXPECT_EQ(inj.injected().sm_disables, 1u);
}

TEST(FaultDomains, QueriesNeverDisturbTransientStream)
{
    // The same transient plan, with and without a layered
    // device-domain schedule, must produce the identical fault
    // sequence: device-domain queries are clock-keyed and draw
    // nothing from the RNG stream.
    gpusim::FaultPlan base;
    base.seed = 42;
    base.launch_fail_rate = 0.3;
    gpusim::FaultPlan layered = base;
    layered.wedge_at_us = 1e9;
    layered.stall_at_us = 5.0;
    layered.stall_duration_us = 2.0;
    layered.sm_disable_at_us = 7.0;
    layered.sm_disable_count = 2;

    gpusim::FaultInjector a(base), b(layered);
    for (int i = 0; i < 200; ++i) {
        const double now = static_cast<double>(i);
        (void)b.deviceWedged(now);
        (void)b.stallPenaltyUs(now);
        (void)b.smsToDisable(now);
        EXPECT_EQ(a.failLaunch(true), b.failLaunch(true))
            << "transient draw " << i
            << " diverged under a device-domain schedule";
    }
}

TEST(FaultDomains, DeviceDomainEventsExcludedFromTransientTotal)
{
    gpusim::FaultPlan plan;
    plan.wedge_at_us = 0.0;
    plan.stall_at_us = 0.0;
    plan.stall_duration_us = 1.0;
    plan.sm_disable_at_us = 0.0;
    plan.sm_disable_count = 1;
    EXPECT_TRUE(plan.anyDeviceDomain());
    EXPECT_TRUE(plan.any());
    gpusim::FaultInjector inj(plan);
    (void)inj.deviceWedged(1.0);
    (void)inj.stallPenaltyUs(0.5);
    (void)inj.smsToDisable(1.0);
    EXPECT_EQ(inj.injected().device_wedges, 1u);
    EXPECT_EQ(inj.injected().device_stalls, 1u);
    EXPECT_EQ(inj.injected().sm_disables, 1u);
    EXPECT_EQ(inj.injected().total(), 0u)
        << "the in-batch recovery reconciliation pairs only "
           "transient categories";
}

TEST(Device, DisableSmsShrinksSpecWithFloorOfOne)
{
    gpusim::Device device(DeviceSpec{}, 256);
    const int before = device.spec().num_sms;
    device.disableSms(before / 2);
    EXPECT_EQ(device.spec().num_sms, before - before / 2);
    EXPECT_EQ(device.disabledSms(), before / 2);
    device.disableSms(10 * before);
    EXPECT_EQ(device.spec().num_sms, 1)
        << "a device never shrinks below one SM";
    device.disableSms(0);
    device.disableSms(-3);
    EXPECT_EQ(device.spec().num_sms, 1);
}

TEST(Device, FunctionalToggleControlsZeroFill)
{
    gpusim::Device device(DeviceSpec{}, 256);
    device.setFunctional(false);
    const auto a = device.memory().allocate(16, MemSpace::Activations);
    device.memory().data(a)[0] = 5.0f;
    device.memory().resetTo(a);
    device.memory().allocate(16, MemSpace::Activations);
    EXPECT_EQ(device.memory().data(a)[0], 5.0f)
        << "timing-only mode skips the zero fill";
    device.setFunctional(true);
    device.memory().resetTo(a);
    device.memory().allocate(16, MemSpace::Activations);
    EXPECT_EQ(device.memory().data(a)[0], 0.0f);
}

} // namespace
