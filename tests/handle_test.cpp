/**
 * @file
 * Contract tests for the vpps::Handle user API: construction-time
 * JIT, stats accounting, the profile-guided mode's kernel rotation,
 * and option validation.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "data/treebank.hpp"
#include "data/vocab.hpp"
#include "models/tree_lstm.hpp"
#include "train/harness.hpp"
#include "vpps/handle.hpp"

namespace {

struct HandleRig
{
    gpusim::Device device{gpusim::DeviceSpec{}, 32u << 20};
    common::Rng data_rng{101};
    data::Vocab vocab{200};
    data::Treebank bank{vocab, 16, data_rng, 8.0, 4, 12};
    common::Rng param_rng{102};
    models::TreeLstmModel model{bank, vocab, 32, 48, device,
                                param_rng};

    float
    trainOne(vpps::Handle& handle, std::size_t start,
             std::size_t batch = 2)
    {
        graph::ComputationGraph cg;
        auto loss = train::buildSuperGraph(model, cg, start, batch);
        return handle.fb(model.model(), cg, loss);
    }
};

TEST(Handle, RequiresAllocatedModel)
{
    gpusim::Device device(gpusim::DeviceSpec{}, 1u << 20);
    graph::Model model;
    model.addWeightMatrix("W", 8, 8);
    auto r = vpps::Handle::tryCreate(model, device,
                                     vpps::VppsOptions{});
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), common::ErrorCode::InvalidArgument);
    EXPECT_DEATH(vpps::Handle(model, device, vpps::VppsOptions{}),
                 "allocated");
}

TEST(Handle, FixedRpwCompilesExactlyOneKernel)
{
    HandleRig rig;
    vpps::VppsOptions opts;
    opts.rpw = 3;
    vpps::Handle handle(rig.model.model(), rig.device, opts);
    EXPECT_EQ(handle.kernel().plan.rpw(), 3);
    EXPECT_GT(handle.jitSeconds(), 0.0);
    EXPECT_FALSE(handle.tuneResult().has_value())
        << "no tuner in fixed-rpw mode";
}

TEST(Handle, ProfileGuidedModeRotatesThenLocks)
{
    HandleRig rig;
    vpps::VppsOptions opts;
    opts.rpw = 0; // profile-guided
    vpps::Handle handle(rig.model.model(), rig.device, opts);
    EXPECT_EQ(handle.kernel().plan.rpw(), 1)
        << "profiling starts at rpw 1";
    std::size_t trained = 0;
    int max_seen = 1;
    while (!handle.tuneResult() && trained < 2048) {
        rig.trainOne(handle, trained);
        trained += 2;
        max_seen = std::max(max_seen, handle.kernel().plan.rpw());
    }
    ASSERT_TRUE(handle.tuneResult().has_value())
        << "tuner must converge";
    EXPECT_GT(max_seen, 1) << "tuner must actually try larger rpw";
    const int picked = handle.tuneResult()->best_rpw;
    EXPECT_EQ(handle.kernel().plan.rpw(), picked);
    // Further training stays on the winner.
    rig.trainOne(handle, trained);
    EXPECT_EQ(handle.kernel().plan.rpw(), picked);
}

TEST(Handle, StatsAccumulateAndReset)
{
    HandleRig rig;
    vpps::VppsOptions opts;
    opts.rpw = 2;
    vpps::Handle handle(rig.model.model(), rig.device, opts);
    for (int i = 0; i < 3; ++i)
        rig.trainOne(handle, static_cast<std::size_t>(i) * 2);
    const auto& s = handle.stats();
    EXPECT_EQ(s.batches, 3u);
    EXPECT_GT(s.graph_us, 0.0);
    EXPECT_GT(s.fwd_sched_us, 0.0);
    EXPECT_GT(s.bwd_sched_us, 0.0);
    EXPECT_GT(s.transfer_us, 0.0);
    EXPECT_GT(s.kernel_us, 0.0);
    EXPECT_GT(s.instructions, 0u);
    EXPECT_GT(s.nodes, 0u);
    EXPECT_GT(s.wall_us, 0.0);
    // Pipelined wall time can never beat the GPU-only lower bound or
    // exceed the fully serialized sum.
    EXPECT_GE(s.wall_us, s.gpuUs() * 0.999);
    EXPECT_LE(s.wall_us, (s.cpuUs() + s.gpuUs()) * 1.001);

    handle.resetStats();
    EXPECT_EQ(handle.stats().batches, 0u);
    EXPECT_DOUBLE_EQ(handle.stats().wall_us, 0.0);
}

TEST(Handle, PoolIsRecycledBetweenBatches)
{
    HandleRig rig;
    vpps::VppsOptions opts;
    opts.rpw = 2;
    vpps::Handle handle(rig.model.model(), rig.device, opts);
    rig.trainOne(handle, 0);
    const auto used_after_first = rig.device.memory().used();
    for (int i = 1; i < 4; ++i)
        rig.trainOne(handle, static_cast<std::size_t>(i) * 2);
    EXPECT_EQ(rig.device.memory().used(), used_after_first)
        << "per-batch allocations must not leak from the pool";
}

TEST(Handle, SyncIsIdempotent)
{
    HandleRig rig;
    vpps::VppsOptions opts;
    opts.rpw = 2;
    vpps::Handle handle(rig.model.model(), rig.device, opts);
    rig.trainOne(handle, 0);
    const float a = handle.sync_get_latest_loss();
    const float b = handle.sync_get_latest_loss();
    EXPECT_FLOAT_EQ(a, b);
    EXPECT_TRUE(std::isfinite(a));
}

TEST(Handle, KernelSourceIsExposedForInspection)
{
    HandleRig rig;
    vpps::VppsOptions opts;
    opts.rpw = 2;
    vpps::Handle handle(rig.model.model(), rig.device, opts);
    EXPECT_FALSE(handle.kernel().source.empty());
    EXPECT_NE(handle.kernel().source.find("reg_cache"),
              std::string::npos);
}

} // namespace
