/** @file Unit tests for the CISC instruction encoding and the script
 *  container (Section III-B). */
#include <gtest/gtest.h>

#include "vpps/isa.hpp"

namespace {

using vpps::Opcode;
using vpps::Script;

TEST(Isa, PreambleRoundTrips)
{
    const auto word = vpps::packPreamble(Opcode::Tanh, 0x00ABCDEFu);
    EXPECT_EQ(vpps::preambleOpcode(word), Opcode::Tanh);
    EXPECT_EQ(vpps::preambleImm(word), 0x00ABCDEFu);
}

TEST(Isa, ImmediateIsLimitedTo24Bits)
{
    EXPECT_DEATH(vpps::packPreamble(Opcode::Copy, 0x01000000u),
                 "24 bits");
}

TEST(Isa, InstructionsFitInTwentyBytes)
{
    // The paper caps instructions at 20 bytes: preamble + <= 4 words.
    for (int op = 0; op < static_cast<int>(Opcode::NumOpcodes); ++op) {
        const int words = vpps::operandWords(static_cast<Opcode>(op));
        EXPECT_GE(words, 0);
        EXPECT_LE(4 * (1 + words), 20)
            << vpps::opcodeName(static_cast<Opcode>(op));
    }
}

TEST(Isa, ExampleEncodingSizesMatchPaper)
{
    // "for a tanh() operation, the framework generates 12 bytes":
    // 4 preamble + 4 output + 4 input.
    EXPECT_EQ(4 * (1 + vpps::operandWords(Opcode::Tanh)), 12);
    // Signal and wait are 4 bytes each.
    EXPECT_EQ(vpps::operandWords(Opcode::Signal), 0);
    EXPECT_EQ(vpps::operandWords(Opcode::Wait), 0);
}

TEST(Script, PrefixSumHeaderIndexesStreams)
{
    Script script(3);
    script.emit(0, Opcode::Tanh, 16, {100, 200});
    script.emit(2, Opcode::Signal, 0, {});
    script.emit(0, Opcode::Wait, 0, {});
    script.seal();

    // Header: [0, len0, len0+len1, total].
    const auto& words = script.words();
    EXPECT_EQ(words[0], 0u);
    EXPECT_EQ(words[1], 4u); // tanh(3) + wait(1)
    EXPECT_EQ(words[2], 4u); // vpp 1 empty
    EXPECT_EQ(words[3], 5u);

    auto [b0, e0] = script.vppStream(0);
    EXPECT_EQ(e0 - b0, 4);
    EXPECT_EQ(vpps::preambleOpcode(b0[0]), Opcode::Tanh);
    EXPECT_EQ(b0[1], 100u);
    EXPECT_EQ(b0[2], 200u);
    EXPECT_EQ(vpps::preambleOpcode(b0[3]), Opcode::Wait);

    auto [b1, e1] = script.vppStream(1);
    EXPECT_EQ(b1, e1);

    auto [b2, e2] = script.vppStream(2);
    EXPECT_EQ(e2 - b2, 1);

    EXPECT_EQ(script.numInstructions(), 3u);
    EXPECT_DOUBLE_EQ(script.bytes(), 4.0 * (4 + 5));
}

TEST(Script, OperandArityIsEnforced)
{
    Script script(1);
    EXPECT_DEATH(script.emit(0, Opcode::Tanh, 4, {1}), "takes");
}

TEST(Script, EmitAfterSealPanics)
{
    Script script(1);
    script.seal();
    EXPECT_DEATH(script.emit(0, Opcode::Nop, 0, {}), "seal");
}

TEST(Script, ExpectedSignalsAreRecorded)
{
    Script script(2);
    script.setExpectedSignals(0, 2);
    script.setExpectedSignals(3, 1);
    ASSERT_EQ(script.expectedSignals().size(), 4u);
    EXPECT_EQ(script.expectedSignals()[0], 2u);
    EXPECT_EQ(script.expectedSignals()[1], 0u);
    EXPECT_EQ(script.expectedSignals()[3], 1u);
}

TEST(Script, AllOpcodesHaveNames)
{
    for (int op = 0; op < static_cast<int>(Opcode::NumOpcodes); ++op) {
        const std::string name =
            vpps::opcodeName(static_cast<Opcode>(op));
        EXPECT_FALSE(name.empty());
        EXPECT_NE(name, "invalid");
    }
}

} // namespace
