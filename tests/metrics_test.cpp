/**
 * @file
 * The metrics registry's contract: exact order statistics (identical
 * to serve::latencyStats), canonical JSON export, and -- the part
 * that makes a dashboard trustworthy -- reconciliation: the registry
 * counters reproduce the simulator's accounting structs exactly.
 * Under a transient-fault serving soak (suite MetricsSoak, carries
 * the soak ctest label) every admission identity holds in the
 * registry, the latency histogram count equals completions, and the
 * recovery-rung counters match the fault injector's log category for
 * category. Fault-free training pins the DRAM side: the last
 * dram.load.weights counter sample equals the TrafficStats total,
 * which equals batches x total weight bytes (Table I's accounting).
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>

#include "common/rng.hpp"
#include "data/treebank.hpp"
#include "data/vocab.hpp"
#include "gpusim/faults.hpp"
#include "models/tree_lstm.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/arrival.hpp"
#include "serve/net.hpp"
#include "serve/server.hpp"
#include "train/harness.hpp"
#include "vpps/handle.hpp"

namespace {

using gpusim::MemSpace;

// ---------------------------------------------------------------
// Registry unit coverage
// ---------------------------------------------------------------

TEST(MetricsUnit, CounterAndGaugeBasics)
{
    obs::MetricsRegistry reg;
    EXPECT_EQ(reg.counterValue("never.touched"), 0u);
    EXPECT_DOUBLE_EQ(reg.gaugeValue("never.touched"), 0.0);

    reg.counter("a").add();
    reg.counter("a").add(4);
    EXPECT_EQ(reg.counterValue("a"), 5u);

    reg.gauge("g").set(2.5);
    reg.gauge("g").add(0.5);
    EXPECT_DOUBLE_EQ(reg.gaugeValue("g"), 3.0);

    // References are stable across later insertions (std::map).
    obs::Counter& a = reg.counter("a");
    reg.counter("zz");
    reg.counter("aa");
    a.add();
    EXPECT_EQ(reg.counterValue("a"), 6u);
}

TEST(MetricsUnit, HistogramBucketsAndOverflow)
{
    obs::Histogram h({1.0, 2.0, 4.0});
    for (const double v : {0.5, 1.0, 1.5, 3.0, 100.0})
        h.observe(v);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_DOUBLE_EQ(h.sum(), 106.0);
    EXPECT_DOUBLE_EQ(h.mean(), 21.2);
    EXPECT_DOUBLE_EQ(h.max(), 100.0);
    const auto& counts = h.bucketCounts();
    ASSERT_EQ(counts.size(), 4u);
    EXPECT_EQ(counts[0], 2u); // <= 1: 0.5, 1.0
    EXPECT_EQ(counts[1], 1u); // <= 2: 1.5
    EXPECT_EQ(counts[2], 1u); // <= 4: 3.0
    EXPECT_EQ(counts[3], 1u); // overflow: 100
    std::uint64_t total = 0;
    for (const auto c : counts)
        total += c;
    EXPECT_EQ(total, h.count());
}

/** The nearest-rank reference: rank = clamp(ceil(p*n), 1, n). */
double
nearestRank(std::vector<double> sorted, double p)
{
    std::sort(sorted.begin(), sorted.end());
    const auto n = static_cast<double>(sorted.size());
    auto rank =
        static_cast<std::size_t>(std::ceil(p * n));
    rank = std::min(std::max<std::size_t>(rank, 1), sorted.size());
    return sorted[rank - 1];
}

TEST(MetricsUnit, PercentileIsNearestRankExact)
{
    obs::Histogram h({10.0});
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0) << "empty histogram";

    // Unsorted insertion order; percentiles must sort internally.
    const std::vector<double> vals = {9.0, 1.0, 7.0, 3.0, 5.0};
    for (const double v : vals)
        h.observe(v);
    for (const double p : {0.0, 0.01, 0.25, 0.5, 0.75, 0.95, 1.0})
        EXPECT_DOUBLE_EQ(h.percentile(p), nearestRank(vals, p))
            << "p=" << p;
    // Edges: p=0 clamps to the minimum, p=1 is the maximum, and a
    // percentile is always an observed value.
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 9.0);
    // Even n, p=0.5 takes the lower middle (ceil(0.5*4) = 2).
    obs::Histogram h2({10.0});
    for (const double v : {4.0, 2.0, 8.0, 6.0})
        h2.observe(v);
    EXPECT_DOUBLE_EQ(h2.percentile(0.5), 4.0);
    // Single observation answers every percentile.
    obs::Histogram h1({10.0});
    h1.observe(42.0);
    for (const double p : {0.0, 0.5, 0.99, 1.0})
        EXPECT_DOUBLE_EQ(h1.percentile(p), 42.0);
}

TEST(MetricsUnit, LatencyStatsComputedByHistogramMatch)
{
    const std::vector<double> lat = {500.0,  1200.0, 800.0, 300.0,
                                     2500.0, 900.0,  700.0};
    const serve::LatencyStats s = serve::latencyStats(lat);
    obs::Histogram h;
    for (const double v : lat)
        h.observe(v);
    EXPECT_EQ(s.count, h.count());
    EXPECT_DOUBLE_EQ(s.mean_us, h.mean());
    EXPECT_DOUBLE_EQ(s.p50_us, h.percentile(0.50));
    EXPECT_DOUBLE_EQ(s.p95_us, h.percentile(0.95));
    EXPECT_DOUBLE_EQ(s.p99_us, h.percentile(0.99));
    EXPECT_DOUBLE_EQ(s.max_us, h.max());

    const serve::LatencyStats empty = serve::latencyStats({});
    EXPECT_EQ(empty.count, 0u);
    EXPECT_DOUBLE_EQ(empty.p99_us, 0.0);
}

TEST(MetricsUnit, DefaultLatencyBucketsAreAscending)
{
    const auto b = obs::Histogram::defaultLatencyBucketsUs();
    ASSERT_GT(b.size(), 4u);
    EXPECT_DOUBLE_EQ(b.front(), 100.0);
    for (std::size_t i = 1; i < b.size(); ++i)
        EXPECT_GT(b[i], b[i - 1]);
    EXPECT_GE(b.back(), 1e8);
}

TEST(MetricsUnit, EmptyHistogramStatisticsAreZero)
{
    obs::Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.max(), 0.0);
    // Both histogram() overloads resolve to the same instance.
    obs::MetricsRegistry reg;
    obs::Histogram& a = reg.histogram("h", {1.0, 2.0});
    obs::Histogram& b = reg.histogram("h");
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(a.bounds().size(), 2u);
}

TEST(MetricsUnit, JsonEscapesHostileNamesAndEmptyRegistry)
{
    obs::MetricsRegistry empty;
    const std::string ej = empty.json();
    EXPECT_NE(ej.find("\"counters\": {}"), std::string::npos) << ej;
    EXPECT_NE(ej.find("\"histograms\": {}"), std::string::npos)
        << ej;

    // Names are dotted identifiers by convention, but the export
    // must stay valid JSON for any name.
    obs::MetricsRegistry reg;
    reg.counter("quote\"name").add();
    reg.counter("back\\slash").add();
    reg.gauge("tab\tnewline\n").set(1.0);
    reg.gauge("bell\x07").set(2.0);
    const std::string j = reg.json();
    EXPECT_NE(j.find("\"quote\\\"name\""), std::string::npos) << j;
    EXPECT_NE(j.find("\"back\\\\slash\""), std::string::npos) << j;
    EXPECT_NE(j.find("\"tab\\tnewline\\n\""), std::string::npos)
        << j;
    EXPECT_NE(j.find("\"bell\\u0007\""), std::string::npos) << j;
}

TEST(MetricsUnit, JsonExportIsCanonicalAndWritable)
{
    obs::MetricsRegistry reg;
    reg.counter("serve.arrivals").add(3);
    reg.counter("recovery.relaunch").add(1);
    reg.gauge("device.busy_us").set(0.1 + 0.2);
    reg.histogram("serve.latency_us", {1000.0}).observe(250.0);

    const std::string j = reg.json();
    EXPECT_EQ(j, reg.json()) << "export must be deterministic";
    // Sorted name order inside each section.
    EXPECT_LT(j.find("\"recovery.relaunch\""),
              j.find("\"serve.arrivals\""));
    EXPECT_NE(j.find("\"device.busy_us\": 0.30000000000000004"),
              std::string::npos)
        << "doubles must round-trip exactly:\n"
        << j;
    EXPECT_NE(j.find("\"count\": 1"), std::string::npos);
    EXPECT_NE(j.find("{\"le\": \"inf\", \"count\": 0}"),
              std::string::npos);

    const std::string path =
        testing::TempDir() + "metrics_test.json";
    ASSERT_TRUE(reg.writeJson(path).ok());
    std::ifstream f(path);
    std::string back((std::istreambuf_iterator<char>(f)),
                     std::istreambuf_iterator<char>());
    EXPECT_EQ(back, j);
    std::remove(path.c_str());
    EXPECT_FALSE(reg.writeJson("/nonexistent-dir/m.json").ok());
}

// ---------------------------------------------------------------
// Reconciliation against the simulator's accounting structs
// ---------------------------------------------------------------

struct MetricsRig
{
    gpusim::Device device{gpusim::DeviceSpec{}, 48u << 20};
    common::Rng data_rng{121};
    data::Vocab vocab{300, 10000};
    data::Treebank bank{vocab, 8, data_rng, 7.0, 4, 10};
    common::Rng param_rng{122};
    std::unique_ptr<models::TreeLstmModel> bm;
    obs::Tracer tracer{1u << 20};
    obs::MetricsRegistry registry;

    MetricsRig()
    {
        unsetenv("VPPS_FAULT_RATE");
        unsetenv("VPPS_FAULT_SEED");
        bm = std::make_unique<models::TreeLstmModel>(
            bank, vocab, 16, 32, device, param_rng);
        device.installTracer(&tracer);
        device.installMetrics(&registry);
    }
};

vpps::VppsOptions
rigOptions(int host_threads = 1)
{
    vpps::VppsOptions opts;
    opts.rpw = 2;
    opts.async = false;
    opts.host_threads = host_threads;
    opts.max_relaunch_attempts = 8;
    return opts;
}

TEST(MetricsReconcile, DramCountersMatchTrafficAndWeightBytes)
{
    MetricsRig rig;
    vpps::Handle handle(rig.bm->model(), rig.device, rigOptions());
    rig.device.traffic().reset();
    rig.tracer.clear();

    const int batches = 3;
    for (int step = 0; step < batches; ++step) {
        graph::ComputationGraph cg;
        handle.fb(rig.bm->model(), cg,
                  train::buildSuperGraph(
                      *rig.bm, cg,
                      static_cast<std::size_t>(step) * 2, 2));
    }
    ASSERT_EQ(rig.tracer.dropped(), 0u);

    // The last dram.load.weights counter sample carries the absolute
    // running total, so it equals the TrafficStats ground truth
    // exactly -- no float re-association between the two.
    double last_weights = -1.0;
    for (const obs::TraceEvent& e : rig.tracer.canonical())
        if (e.kind == obs::EventKind::Counter &&
            std::string(e.cat) == "dram.load" &&
            std::string(e.name) == "weights")
            last_weights = e.arg0;
    const double truth =
        rig.device.traffic().loadBytes(MemSpace::Weights);
    EXPECT_DOUBLE_EQ(last_weights, truth)
        << "counter samples diverged from TrafficStats";
    // ...and the ground truth itself is Table I's identity: the
    // persistent kernel loads each weight matrix once per batch.
    EXPECT_NEAR(truth,
                static_cast<double>(batches) *
                    rig.bm->model().totalWeightMatrixBytes(),
                1.0);

    // The published gauges mirror the same totals.
    rig.device.publishMetrics(rig.registry);
    EXPECT_DOUBLE_EQ(
        rig.registry.gaugeValue("dram.load_bytes.weights"), truth);
    EXPECT_DOUBLE_EQ(rig.registry.gaugeValue("device.busy_us"),
                     rig.device.busyUs());
    EXPECT_GT(rig.registry.gaugeValue("device.launches"), 0.0);
}

TEST(MetricsReconcile, CheckpointedRecoveryCountsInRegistry)
{
    MetricsRig rig;
    // Batch-killing plan: 50% script corruption, one retransmit.
    gpusim::FaultPlan plan;
    plan.seed = 13;
    plan.script_ecc_rate = 0.5;
    rig.device.installFaults(plan);
    auto opts = rigOptions();
    opts.max_retransmits = 1;
    vpps::Handle handle(rig.bm->model(), rig.device, opts);

    train::RecoveryOptions ropts;
    ropts.checkpoint_every_batches = 2;
    ropts.max_restores = 200;
    const auto rep = train::measureVppsRecoverable(
        handle, rig.device, *rig.bm, 8, 2, ropts);
    ASSERT_TRUE(rep.completed) << rep.last_error;
    EXPECT_GT(rep.restores, 0u)
        << "the plan never failed a batch -- raise the rate";

    EXPECT_EQ(rig.registry.counterValue("train.checkpoints"),
              rep.checkpoints);
    EXPECT_EQ(rig.registry.counterValue("train.restores"),
              rep.restores);
    // Every failed batch walked the retransmit rung first.
    EXPECT_EQ(
        rig.registry.counterValue("recovery.script_retransmit"),
        rig.device.faults()->injected().script_ecc);
}

/** The accounting identities under a hostile device: transient
 *  faults, 8 host threads, serving traffic. Suite name carries the
 *  ctest soak label (see tests/CMakeLists.txt). */
/**
 * Every NetStats field mirrors into the registry under "net.<field>"
 * one-for-one (the net-lane analog of the fleet.* mirror). The model
 * is driven through every code path that touches a counter --
 * delivered/lost/blocked sends, retransmit ladders, chunked ships
 * with resume, an abandoned ship, the broadcast, and the fleet-side
 * note hooks -- then the registry is reconciled field for field. A
 * NetStats field without a registry mirror (or vice versa) fails
 * here.
 */
TEST(MetricsReconcile, NetStatsMirrorFieldForField)
{
    obs::MetricsRegistry mx;
    obs::Tracer tracer;
    serve::NetConfig nc;
    auto topo = gpusim::Topology::parse(
        "devices 3\nlink 0 1 nvlink\nlink 0 2 nic\n");
    ASSERT_TRUE(topo.ok());
    nc.topology = std::move(topo).value();
    // Lossy link 0-2 plus a down window on 0-1: exercises loss,
    // retransmits, blocked sends, and ship retries deterministically.
    gpusim::LinkFault lossy;
    lossy.a = 0;
    lossy.b = 2;
    lossy.loss_rate = 0.4;
    nc.faults.link_faults.push_back(lossy);
    gpusim::LinkFault window;
    window.a = 0;
    window.b = 1;
    window.down_at_us = 100.0;
    window.down_for_us = 50.0;
    nc.faults.link_faults.push_back(window);
    nc.faults.link_seed = 7;
    nc.ship_chunk_bytes = 1024;
    serve::NetworkModel net(nc, &tracer, &mx);
    ASSERT_TRUE(net.enabled());

    std::uint64_t failed_elsewhere = 0;
    {
        // Permanent cut on a throwaway model sharing the registry:
        // the abandoned-ship path must book ships_failed.
        serve::NetConfig cut = nc;
        cut.faults.link_faults.clear();
        gpusim::LinkFault dead;
        dead.a = 0;
        dead.b = 1;
        dead.down_at_us = 0.0;
        dead.down_for_us = -1.0; // never heals
        cut.faults.link_faults.push_back(dead);
        serve::NetworkModel net2(cut, &tracer, &mx);
        EXPECT_FALSE(net2.ship(0, 1, 2048, 5.0).ok);
        failed_elsewhere = net2.stats().ships_failed;
        EXPECT_EQ(mx.counterValue("net.ships_failed"),
                  failed_elsewhere);
    }

    for (int i = 0; i < 40; ++i)
        net.send(0, 2, 64, 10.0 + i, "probe");     // loss draws
    net.send(0, 1, 512, 120.0, "dispatch");        // inside window
    net.send(0, 1, 512, 200.0, "dispatch");        // after heal
    for (int i = 0; i < 10; ++i)
        net.reliableDeliveryAtUs(0, 2, 128, 300.0 + i);
    net.ship(0, 2, 64 * 1024, 400.0);              // chunk retries
    net.ship(0, 1, 4096, 120.0);                   // waits out window
    ASSERT_TRUE(net.paramBroadcastUs(1 << 20, 0.0).ok());
    net.noteProbeReply(1, 3.5, 500.0);
    net.noteTimeout(42, 510.0);
    net.noteFence(42, 1, 520.0);
    net.noteFenceDrop(42, 1, 530.0);
    net.noteUnreachableSkip();

    const serve::NetStats& s = net.stats();
    EXPECT_GT(s.messages_lost, 0u) << "loss never fired";
    EXPECT_GT(s.sends_blocked, 0u);
    EXPECT_GT(s.retransmits, 0u);
    EXPECT_GT(s.ship_retries, 0u);
    const std::pair<const char*, std::uint64_t> fields[] = {
        {"net.messages", s.messages},
        {"net.messages_lost", s.messages_lost},
        {"net.sends_blocked", s.sends_blocked},
        {"net.retransmits", s.retransmits},
        {"net.probe_replies", s.probe_replies},
        {"net.unreachable_skips", s.unreachable_skips},
        {"net.timeouts", s.timeouts},
        {"net.fences", s.fences},
        {"net.fence_drops", s.fence_drops},
        {"net.ship_chunks", s.ship_chunks},
        {"net.ship_retries", s.ship_retries},
        {"net.ship_bytes", s.ship_bytes},
        {"net.ship_us_total", s.ship_us_total},
        {"net.ships_failed", s.ships_failed + failed_elsewhere},
        {"net.param_broadcasts", s.param_broadcasts},
        {"net.bytes_on_wire", s.bytes_on_wire},
    };
    for (const auto& [name, value] : fields)
        EXPECT_EQ(mx.counterValue(name), value)
            << name << " disagrees with NetStats";
    // One RTT observation per probe reply, one duration per
    // completed ship.
    EXPECT_EQ(mx.histogram("net.probe_rtt_us").count(),
              s.probe_replies);
    EXPECT_EQ(mx.histogram("net.ship_us").count(), 2u);
}

TEST(MetricsSoak, ServingRegistryReconcilesUnderFaults)
{
    MetricsRig rig;
    rig.device.installFaults(gpusim::FaultPlan::uniform(0.15, 57));
    auto opts = rigOptions(8);
    vpps::Handle handle(rig.bm->model(), rig.device, opts);

    serve::ServerConfig cfg;
    serve::Server server(rig.device,
                         {{"treelstm", rig.bm.get(), &handle}}, cfg);
    server.calibrate();
    const double batch_us = server.serviceUs(0, cfg.batch.max_batch);

    serve::ArrivalConfig ac;
    ac.rate_per_sec = 0.6 * server.capacityPerSec();
    ac.count = 40;
    ac.deadline_slack_us = 60.0 * batch_us;
    ac.low_deadline_slack_us = 60.0 * batch_us;
    ac.seed = 19;
    server.run(serve::generateOpenLoopArrivals(
        ac, server.nowUs() + batch_us, rig.bm->datasetSize()));

    const serve::ServerCounters& c = server.counters();
    ASSERT_TRUE(c.reconciled());
    ASSERT_GT(c.completed, 0u);
    const obs::MetricsRegistry& reg = rig.registry;
    const auto v = [&](const char* name) {
        return reg.counterValue(name);
    };

    // Registry mirrors ServerCounters one-for-one...
    EXPECT_EQ(v("serve.arrivals"), c.arrivals);
    EXPECT_EQ(v("serve.admitted"), c.admitted);
    EXPECT_EQ(v("serve.completed"), c.completed);
    EXPECT_EQ(v("serve.timed_out"), c.timed_out);
    EXPECT_EQ(v("serve.failed"), c.failed);
    EXPECT_EQ(v("serve.rejected_queue_full"), c.rejected_queue_full);
    EXPECT_EQ(v("serve.rejected_infeasible"), c.rejected_infeasible);
    EXPECT_EQ(v("serve.shed"), c.shed);
    EXPECT_EQ(v("serve.retries"), c.retries);
    EXPECT_EQ(v("serve.batches"), c.batches);
    EXPECT_EQ(v("serve.fallback_batches"), c.fallback_batches);
    EXPECT_EQ(v("serve.cancelled_before_dispatch"),
              c.cancelled_before_dispatch);

    // ...so the no-silent-drops identities hold in the registry
    // itself, without consulting the struct.
    EXPECT_EQ(v("serve.arrivals"),
              v("serve.admitted") + v("serve.rejected_queue_full") +
                  v("serve.rejected_infeasible") + v("serve.shed"));
    EXPECT_EQ(v("serve.admitted"),
              v("serve.completed") + v("serve.timed_out") +
                  v("serve.failed"));

    // One latency observation per completion, nothing else.
    const auto hist = reg.histograms().find("serve.latency_us");
    ASSERT_NE(hist, reg.histograms().end());
    EXPECT_EQ(hist->second.count(), c.completed);

    // Recovery rungs == RecoveryStats == the injector's log,
    // category for category: no fault handled twice, none dropped.
    const gpusim::FaultLog& log = rig.device.faults()->injected();
    ASSERT_GT(log.total(), 0u)
        << "the plan injected nothing -- raise the rate";
    const vpps::RecoveryStats& rec = handle.stats().recovery;
    EXPECT_EQ(v("recovery.script_retransmit"), log.script_ecc);
    EXPECT_EQ(v("recovery.weight_reload"), log.weight_ecc);
    EXPECT_EQ(v("recovery.relaunch"), log.launch_failures);
    EXPECT_EQ(v("recovery.hang_recovery"), log.hangs);
    EXPECT_EQ(v("recovery.alloc_retry"), log.alloc_failures);
    EXPECT_EQ(v("recovery.loss_reread"), log.loss_ecc);
    EXPECT_EQ(v("recovery.script_retransmit"),
              rec.script_retransmits);
    EXPECT_EQ(v("recovery.relaunch"), rec.relaunches);
    EXPECT_EQ(v("recovery.hang_recovery"), rec.hang_recoveries);

    // The trace saw the same story: decision instants cover every
    // arrival disposition, recovery instants cover every rung.
    ASSERT_EQ(rig.tracer.dropped(), 0u);
    std::uint64_t decisions = 0, rungs = 0;
    for (const obs::TraceEvent& e : rig.tracer.canonical()) {
        if (e.lane == obs::kLaneServe &&
            std::string(e.cat) == "serve" &&
            (std::string(e.name) == "admit" ||
             std::string(e.name) == "reject_queue_full" ||
             std::string(e.name) == "reject_infeasible" ||
             std::string(e.name) == "shed"))
            ++decisions;
        if (e.lane == obs::kLaneRecovery)
            ++rungs;
    }
    EXPECT_EQ(decisions, c.arrivals);
    EXPECT_GE(rungs, log.total());
}

} // namespace
