/**
 * @file
 * Unit tests for the host-parallel worker pool: full index coverage,
 * reuse across submissions, exception propagation, and thread-count
 * resolution.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.hpp"

namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce)
{
    common::ThreadPool pool(4);
    EXPECT_EQ(pool.threads(), 4);
    constexpr std::size_t n = 10000;
    std::vector<int> hits(n, 0);
    pool.parallelFor(n, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(hits[i], 1) << "index " << i;
}

TEST(ThreadPool, ReusableAcrossSubmissions)
{
    common::ThreadPool pool(3);
    std::atomic<long> sum{0};
    for (int round = 0; round < 50; ++round)
        pool.parallelFor(100, [&](std::size_t i) {
            sum.fetch_add(static_cast<long>(i),
                          std::memory_order_relaxed);
        });
    EXPECT_EQ(sum.load(), 50L * (99L * 100L / 2L));
}

TEST(ThreadPool, SingleThreadRunsInline)
{
    common::ThreadPool pool(1);
    EXPECT_EQ(pool.threads(), 1);
    std::vector<int> order;
    pool.parallelFor(5, [&](std::size_t i) {
        order.push_back(static_cast<int>(i));
    });
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, PropagatesFirstExceptionAndStaysUsable)
{
    common::ThreadPool pool(4);
    EXPECT_THROW(pool.parallelFor(1000,
                                  [&](std::size_t i) {
                                      if (i == 17)
                                          throw std::runtime_error(
                                              "boom");
                                  }),
                 std::runtime_error);

    // The pool must survive a throwing job.
    std::atomic<int> count{0};
    pool.parallelFor(64, [&](std::size_t) {
        count.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, EmptyAndSingletonJobs)
{
    common::ThreadPool pool(2);
    int calls = 0;
    pool.parallelFor(0, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    pool.parallelFor(1, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolConfig, ResolveThreadCount)
{
    unsetenv("VPPS_HOST_THREADS");
    EXPECT_EQ(common::resolveThreadCount(3), 3);
    EXPECT_EQ(common::resolveThreadCount(0), 1);
    EXPECT_EQ(common::resolveThreadCount(-2), 1);

    setenv("VPPS_HOST_THREADS", "6", 1);
    EXPECT_EQ(common::resolveThreadCount(0), 6);
    // An explicit request wins over the environment.
    EXPECT_EQ(common::resolveThreadCount(2), 2);

    setenv("VPPS_HOST_THREADS", "garbage", 1);
    EXPECT_EQ(common::resolveThreadCount(0), 1);
    unsetenv("VPPS_HOST_THREADS");
}

} // namespace
