/** @file Tests for the script disassembler. */
#include <gtest/gtest.h>

#include "vpps/disasm.hpp"

namespace {

vpps::Script
tinyScript()
{
    vpps::Script script(3);
    script.emit(0, vpps::Opcode::MatVec, 2, {100, 200});
    script.emit(0, vpps::Opcode::Signal, 0, {});
    script.emit(2, vpps::Opcode::Wait, 0, {});
    script.emit(2, vpps::Opcode::Tanh, 64, {300, 200});
    script.setExpectedSignals(0, 1);
    script.seal();
    return script;
}

TEST(Disasm, GoldenListing)
{
    const auto script = tinyScript();
    const std::string text = vpps::disassemble(script);
    const std::string expected =
        "vpp 000: mvm         m=2  [+100, +200]\n"
        "vpp 000: signal      b=0\n"
        "vpp 002: wait        b=0\n"
        "vpp 002: tanh        len=64  [+300, +200]\n";
    EXPECT_EQ(text, expected);
}

TEST(Disasm, FiltersByVpp)
{
    const auto script = tinyScript();
    vpps::DisasmOptions opts;
    opts.only_vpp = 2;
    const std::string text = vpps::disassemble(script, opts);
    EXPECT_EQ(text.find("vpp 000"), std::string::npos);
    EXPECT_NE(text.find("vpp 002"), std::string::npos);
}

TEST(Disasm, ShowsInstructionSizes)
{
    const auto script = tinyScript();
    vpps::DisasmOptions opts;
    opts.show_sizes = true;
    const std::string text = vpps::disassemble(script, opts);
    EXPECT_NE(text.find("; 12B"), std::string::npos)
        << "mvm/tanh are 12 bytes";
    EXPECT_NE(text.find("; 4B"), std::string::npos)
        << "signal/wait are 4 bytes";
}

TEST(Disasm, SummaryCountsEverything)
{
    const auto script = tinyScript();
    const std::string s = vpps::summarize(script);
    EXPECT_NE(s.find("4 instructions"), std::string::npos);
    EXPECT_NE(s.find("1 barriers"), std::string::npos);
    EXPECT_NE(s.find("1 signals / 1 waits"), std::string::npos);
}

} // namespace
