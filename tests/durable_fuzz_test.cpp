/**
 * @file
 * Fuzz and regression suite for the durability wire formats: the
 * checkpoint manifest, the WAL record framing, and the fleet state
 * payload plus its journal records. Recovery parses these off a
 * store that tears and rots crashed tails, so every parser must
 * reject corruption with a structured InvalidArgument (or, for the
 * WAL, stop at the torn tail) and never crash on arbitrary bytes.
 * Mirrors the checkpoint_fuzz_test pattern: exhaustive truncation
 * and single-bit-flip sweeps, promoted regressions, seeded random
 * fuzzing.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "durable/manifest.hpp"
#include "durable/wal.hpp"
#include "serve/durability.hpp"

namespace {

std::vector<std::uint8_t>
sampleManifestImage()
{
    durable::Manifest m;
    m.generation = 7;
    m.checkpoint_file = "fleet/ckpt.7";
    m.checkpoint_bytes = 4096;
    m.checkpoint_digest = 0x0123456789ABCDEFull;
    m.wal_file = "fleet/wal.7";
    return durable::serializeManifest(m);
}

serve::FleetDurableState
sampleFleetState()
{
    serve::FleetDurableState st;
    st.wal_first_seq = 11;
    st.now_us = 1.5e6;
    st.counters.arrivals = 9;
    st.counters.admitted = 8;
    st.counters.completed = 6;
    st.counters.routed = 6;
    st.counters.admitted_high = 5;
    st.counters.completed_high = 5;
    st.completed = {{1, 0x3F800000u, 1000.0},
                    {2, 0x40000000u, 2000.0}};
    serve::Request pend;
    pend.id = 3;
    pend.cls = serve::RequestClass::Low;
    pend.input_index = 4;
    pend.arrival_us = 100.0;
    pend.deadline_us = 1.0e9;
    st.pending = {pend};
    st.params_blob = {0xDE, 0xAD, 0xBE, 0xEF, 1, 2, 3, 4};
    return st;
}

std::vector<std::uint8_t>
sampleWalImage(std::size_t records)
{
    std::vector<std::uint8_t> out;
    for (std::size_t i = 0; i < records; ++i) {
        std::vector<std::uint8_t> payload(5 + i,
                                          static_cast<std::uint8_t>(i));
        const auto frame =
            durable::encodeWalRecord(1, i + 1, payload);
        out.insert(out.end(), frame.begin(), frame.end());
    }
    return out;
}

void
expectMalformedManifest(const std::vector<std::uint8_t>& img,
                        const std::string& what)
{
    auto r = durable::parseManifest(img);
    ASSERT_FALSE(r.ok()) << what << ": accepted a malformed manifest";
    EXPECT_EQ(r.status().code(), common::ErrorCode::InvalidArgument)
        << what;
    EXPECT_NE(r.status().toString().find("manifest"),
              std::string::npos)
        << what << ": error must name the decoder";
}

void
expectMalformedState(const std::vector<std::uint8_t>& img,
                     const std::string& what)
{
    auto r = serve::parseFleetState(img);
    ASSERT_FALSE(r.ok()) << what
                         << ": accepted a malformed fleet state";
    EXPECT_EQ(r.status().code(), common::ErrorCode::InvalidArgument)
        << what;
}

TEST(ManifestFuzz, RoundTripsBitwise)
{
    auto r = durable::parseManifest(sampleManifestImage());
    ASSERT_TRUE(r.ok()) << r.status().toString();
    EXPECT_EQ(r.value().generation, 7u);
    EXPECT_EQ(r.value().checkpoint_file, "fleet/ckpt.7");
    EXPECT_EQ(r.value().checkpoint_bytes, 4096u);
    EXPECT_EQ(r.value().checkpoint_digest, 0x0123456789ABCDEFull);
    EXPECT_EQ(r.value().wal_file, "fleet/wal.7");
}

TEST(ManifestFuzz, EveryTruncationIsRejected)
{
    const auto img = sampleManifestImage();
    for (std::size_t len = 0; len < img.size(); ++len)
        expectMalformedManifest(
            {img.begin(), img.begin() + static_cast<long>(len)},
            "truncated to " + std::to_string(len));
}

TEST(ManifestFuzz, EverySingleBitFlipIsRejected)
{
    const auto img = sampleManifestImage();
    for (std::size_t byte = 0; byte < img.size(); ++byte)
        for (int bit = 0; bit < 8; ++bit) {
            auto mutant = img;
            mutant[byte] ^= static_cast<std::uint8_t>(1u << bit);
            expectMalformedManifest(mutant,
                                    "bit " + std::to_string(bit) +
                                        " of byte " +
                                        std::to_string(byte));
        }
}

TEST(ManifestFuzz, PromotedRegressions)
{
    const auto good = sampleManifestImage();
    auto expectNames = [&](std::vector<std::uint8_t> img,
                           const char* needle) {
        auto r = durable::parseManifest(img);
        ASSERT_FALSE(r.ok()) << needle;
        EXPECT_NE(r.status().toString().find(needle),
                  std::string::npos)
            << r.status().toString();
    };
    {
        auto m = good;
        m[0] = 'X';
        expectNames(m, "magic");
    }
    {
        auto m = good;
        m[4] = 0xFF;
        expectNames(m, "version");
    }
    {
        // Generation zero is reserved "no state"; it must never
        // round-trip through a manifest.
        auto m = good;
        for (std::size_t i = 8; i < 16; ++i)
            m[i] = 0;
        expectNames(m, "generation");
    }
    {
        // checkpoint_file length zeroed: empty names are invalid.
        auto m = good;
        for (std::size_t i = 16; i < 20; ++i)
            m[i] = 0;
        expectNames(m, "length out of range");
    }
    {
        // Payload-only corruption the field checks cannot see: the
        // trailing digest must catch it.
        auto m = good;
        m[21] ^= 0x01; // inside checkpoint_file's name bytes
        expectNames(m, "digest");
    }
    expectMalformedManifest({}, "empty image");
}

TEST(WalFuzz, TruncationKeepsExactlyTheCompleteRecordPrefix)
{
    const std::size_t n = 3;
    const auto img = sampleWalImage(n);
    std::vector<std::size_t> boundaries = {0};
    {
        std::size_t off = 0;
        for (std::size_t i = 0; i < n; ++i) {
            off += durable::kWalHeaderBytes + (5 + i) +
                   durable::kWalDigestBytes;
            boundaries.push_back(off);
        }
    }
    for (std::size_t len = 0; len <= img.size(); ++len) {
        const auto rr = durable::readWal(img.data(), len, 1);
        std::size_t complete = 0;
        for (std::size_t b : boundaries)
            if (b <= len && b != 0)
                ++complete;
        EXPECT_EQ(rr.records.size(), complete)
            << "truncated to " << len;
        const bool at_boundary =
            std::find(boundaries.begin(), boundaries.end(), len) !=
            boundaries.end();
        EXPECT_EQ(rr.torn, !at_boundary) << "truncated to " << len;
        for (std::size_t i = 0; i < rr.records.size(); ++i)
            EXPECT_EQ(rr.records[i].seq, i + 1);
    }
}

TEST(WalFuzz, EverySingleBitFlipTearsTheTail)
{
    const auto img = sampleWalImage(3);
    for (std::size_t byte = 0; byte < img.size(); ++byte)
        for (int bit = 0; bit < 8; ++bit) {
            auto mutant = img;
            mutant[byte] ^= static_cast<std::uint8_t>(1u << bit);
            const auto rr = durable::readWal(mutant, 1);
            // A flip anywhere invalidates the record containing it
            // (length, type, seq, and payload are all under the
            // per-record digest), so the valid prefix must shrink
            // and the tail must report torn.
            EXPECT_TRUE(rr.torn)
                << "bit " << bit << " of byte " << byte;
            EXPECT_LT(rr.records.size(), 3u)
                << "bit " << bit << " of byte " << byte;
            EXPECT_FALSE(rr.tail_error.empty());
        }
}

TEST(WalFuzz, OversizedLengthIsCorruptionNotAllocation)
{
    std::vector<std::uint8_t> img(durable::kWalHeaderBytes +
                                  durable::kWalDigestBytes);
    // payload_len = 0xFFFFFFFF: must be rejected by the payload cap
    // before any attempt to read (or allocate) 4 GiB.
    img[0] = img[1] = img[2] = img[3] = 0xFF;
    const auto rr = durable::readWal(img, 1);
    EXPECT_TRUE(rr.records.empty());
    EXPECT_TRUE(rr.torn);
    EXPECT_NE(rr.tail_error.find("payload"), std::string::npos)
        << rr.tail_error;
}

TEST(FleetStateFuzz, RoundTripsBitwise)
{
    const auto st = sampleFleetState();
    auto r = serve::parseFleetState(serve::serializeFleetState(st));
    ASSERT_TRUE(r.ok()) << r.status().toString();
    const auto& out = r.value();
    EXPECT_EQ(out.wal_first_seq, st.wal_first_seq);
    EXPECT_EQ(out.now_us, st.now_us);
    EXPECT_EQ(out.counters.arrivals, st.counters.arrivals);
    EXPECT_EQ(out.counters.completed_high,
              st.counters.completed_high);
    ASSERT_EQ(out.completed.size(), 2u);
    EXPECT_EQ(out.completed[1].id, 2u);
    EXPECT_EQ(out.completed[1].response_bits, 0x40000000u);
    ASSERT_EQ(out.pending.size(), 1u);
    EXPECT_EQ(out.pending[0].id, 3u);
    EXPECT_EQ(out.pending[0].cls, serve::RequestClass::Low);
    EXPECT_EQ(out.pending[0].input_index, 4u);
    EXPECT_EQ(out.params_blob, st.params_blob);
}

TEST(FleetStateFuzz, EveryTruncationIsRejected)
{
    const auto img = serve::serializeFleetState(sampleFleetState());
    for (std::size_t len = 0; len < img.size(); ++len)
        expectMalformedState(
            {img.begin(), img.begin() + static_cast<long>(len)},
            "truncated to " + std::to_string(len));
}

TEST(FleetStateFuzz, EverySingleBitFlipIsRejected)
{
    const auto img = serve::serializeFleetState(sampleFleetState());
    for (std::size_t byte = 0; byte < img.size(); ++byte)
        for (int bit = 0; bit < 8; ++bit) {
            auto mutant = img;
            mutant[byte] ^= static_cast<std::uint8_t>(1u << bit);
            expectMalformedState(mutant,
                                 "bit " + std::to_string(bit) +
                                     " of byte " +
                                     std::to_string(byte));
        }
}

TEST(FleetStateFuzz, PromotedRegressions)
{
    const auto good = serve::serializeFleetState(sampleFleetState());
    auto expectNames = [&](std::vector<std::uint8_t> img,
                           const char* needle) {
        auto r = serve::parseFleetState(img);
        ASSERT_FALSE(r.ok()) << needle;
        EXPECT_NE(r.status().toString().find(needle),
                  std::string::npos)
            << r.status().toString();
    };
    {
        auto m = good;
        m[0] = 'X';
        expectNames(m, "magic");
    }
    {
        auto m = good;
        m[4] = 0xFF;
        expectNames(m, "version");
    }
    {
        // Completed count inflated to 2^64-1: the entry cap must
        // reject it before the reserve. Offset: magic+version (8) +
        // wal_first_seq (8) + now (8) + 24 counters (192).
        auto m = good;
        for (std::size_t i = 216; i < 224; ++i)
            m[i] = 0xFF;
        expectNames(m, "completed count");
    }
    {
        auto m = good;
        m[224] ^= 0x01; // first completed entry's id
        expectNames(m, "digest");
    }
    expectMalformedState({}, "empty image");
}

TEST(JournalRecordFuzz, AdmitAndOutcomeRoundTrip)
{
    serve::JournalAdmit a;
    a.id = 0xABCDEF0102030405ull;
    a.cls = serve::RequestClass::Low;
    a.decision = serve::JournalDecision::Shed;
    a.input_index = 99;
    a.arrival_us = 123.5;
    a.deadline_us = 1.0e9;
    auto ra = serve::decodeAdmit(serve::encodeAdmit(a));
    ASSERT_TRUE(ra.ok()) << ra.status().toString();
    EXPECT_EQ(ra.value().id, a.id);
    EXPECT_EQ(ra.value().cls, a.cls);
    EXPECT_EQ(ra.value().decision, a.decision);
    EXPECT_EQ(ra.value().input_index, a.input_index);
    EXPECT_EQ(ra.value().arrival_us, a.arrival_us);
    EXPECT_EQ(ra.value().deadline_us, a.deadline_us);

    serve::JournalOutcome o;
    o.id = 77;
    o.outcome = serve::Outcome::Completed;
    o.cls = serve::RequestClass::High;
    o.response_bits = 0xC0FFEE01u;
    o.latency_us = 4242.0;
    auto ro = serve::decodeOutcome(serve::encodeOutcome(o));
    ASSERT_TRUE(ro.ok()) << ro.status().toString();
    EXPECT_EQ(ro.value().id, o.id);
    EXPECT_EQ(ro.value().outcome, o.outcome);
    EXPECT_EQ(ro.value().cls, o.cls);
    EXPECT_EQ(ro.value().response_bits, o.response_bits);
    EXPECT_EQ(ro.value().latency_us, o.latency_us);
}

TEST(JournalRecordFuzz, BadSizesAndEnumsAreRejected)
{
    const auto admit = serve::encodeAdmit({});
    const auto outcome = serve::encodeOutcome({});
    for (std::size_t len = 0; len < admit.size(); ++len)
        EXPECT_FALSE(serve::decodeAdmit({admit.begin(),
                                         admit.begin() +
                                             static_cast<long>(len)})
                         .ok());
    for (std::size_t len = 0; len < outcome.size(); ++len)
        EXPECT_FALSE(
            serve::decodeOutcome({outcome.begin(),
                                  outcome.begin() +
                                      static_cast<long>(len)})
                .ok());
    {
        auto m = admit;
        m[8] = 2; // request class out of range
        EXPECT_FALSE(serve::decodeAdmit(m).ok());
    }
    {
        auto m = admit;
        m[9] = 4; // decision out of range
        EXPECT_FALSE(serve::decodeAdmit(m).ok());
    }
    {
        auto m = outcome;
        m[8] = 0xFF; // outcome out of range
        EXPECT_FALSE(serve::decodeOutcome(m).ok());
    }
}

TEST(DurableParsersFuzz, SeededRandomFuzzNeverCrashes)
{
    common::Rng rng(4321);
    for (int iter = 0; iter < 2000; ++iter) {
        const std::size_t len = rng.nextBelow(300);
        std::vector<std::uint8_t> blob(len);
        for (auto& b : blob)
            b = static_cast<std::uint8_t>(rng.nextBelow(256));
        // Random bytes may by cosmic luck parse; the requirement is
        // only that no parser crashes and every rejection is
        // structured.
        if (auto r = durable::parseManifest(blob); !r.ok())
            EXPECT_EQ(r.status().code(),
                      common::ErrorCode::InvalidArgument);
        if (auto r = serve::parseFleetState(blob); !r.ok())
            EXPECT_EQ(r.status().code(),
                      common::ErrorCode::InvalidArgument);
        (void)serve::decodeAdmit(blob);
        (void)serve::decodeOutcome(blob);
        const auto rr = durable::readWal(blob, 1);
        EXPECT_LE(rr.clean_bytes, blob.size());
    }
}

} // namespace
