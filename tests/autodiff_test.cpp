/**
 * @file
 * Whole-graph gradient checking: every parameter gradient produced by
 * the backward pass must match central finite differences of the
 * loss, on a composite graph that exercises every op type (matvec,
 * lookup, bias, add, cmult, tanh/sigmoid/relu, scale, slice, concat,
 * pickneglogsoftmax). This validates the autodiff rules end to end,
 * independent of any execution strategy.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "common/rng.hpp"
#include "exec/kernels.hpp"
#include "graph/expr.hpp"
#include "graph/level_sort.hpp"

namespace {

struct DiffRig
{
    gpusim::Device device{gpusim::DeviceSpec{}, 4u << 20};
    graph::Model model;
    graph::ParamId w_a, w_b, bias, table;

    DiffRig()
    {
        w_a = model.addWeightMatrix("A", 6, 5);
        w_b = model.addWeightMatrix("B", 4, 6);
        bias = model.addBias("b", 6);
        table = model.addLookup("E", 7, 5);
        common::Rng rng(71);
        model.allocate(device, rng);
    }

    /** Composite expression using every differentiable op. */
    graph::Expr
    build(graph::ComputationGraph& cg)
    {
        using namespace graph;
        Expr e = lookup(cg, model, table, 3);
        Expr x = input(cg, {0.3f, -0.2f, 0.8f, 0.1f, -0.5f});
        Expr mixed = add({e, x});
        Expr h = graph::tanh(matvec(model, w_a, mixed) +
                             parameter(cg, model, bias));
        Expr g = sigmoid(scale(h, 1.7f));
        Expr prod = cmult(h, g);
        Expr lo = slice(prod, 0, 3);
        Expr hi = slice(prod, 3, 3);
        Expr re = relu(concat({hi, lo}));
        Expr logits = matvec(model, w_b, re);
        return pickNegLogSoftmax(logits, 2);
    }

    /** Forward-only loss evaluation at the current parameters. */
    float
    evaluate()
    {
        auto& mem = device.memory();
        const auto mark = mem.mark();
        graph::ComputationGraph cg;
        auto loss = build(cg);
        const auto live = graph::reachableFrom(cg, loss.id);
        exec::placeForward(device, model, cg, live);
        for (graph::NodeId id = 0; id < cg.size(); ++id)
            if (live[id])
                exec::computeNodeForward(device, model, cg, id);
        const float value = mem.data(cg.node(loss.id).fwd)[0];
        mem.resetTo(mark);
        return value;
    }

    /** One full backward pass populating parameter gradients. */
    void
    backward()
    {
        auto& mem = device.memory();
        const auto mark = mem.mark();
        graph::ComputationGraph cg;
        auto loss = build(cg);
        const auto live = graph::reachableFrom(cg, loss.id);
        exec::placeForward(device, model, cg, live);
        for (graph::NodeId id = 0; id < cg.size(); ++id)
            if (live[id])
                exec::computeNodeForward(device, model, cg, id);
        exec::placeBackward(device, model, cg, live, loss.id);
        for (graph::NodeId id = cg.size(); id-- > 0;)
            if (live[id])
                exec::computeNodeBackward(device, model, cg, id);
        mem.resetTo(mark);
    }
};

class ParamGradientTest : public testing::TestWithParam<int>
{
};

TEST_P(ParamGradientTest, MatchesCentralFiniteDifferences)
{
    DiffRig rig;
    rig.backward();

    const auto pid = static_cast<graph::ParamId>(GetParam());
    auto& p = rig.model.param(pid);
    auto& mem = rig.device.memory();
    const float* analytic = mem.data(p.grad);
    float* values = mem.data(p.value);

    const float eps = 1e-3f;
    std::size_t checked = 0;
    // Stride through the parameter so the test stays fast but still
    // samples every region of the tensor.
    const std::size_t stride =
        std::max<std::size_t>(1, p.shape.size() / 24);
    for (std::size_t i = 0; i < p.shape.size(); i += stride) {
        const float saved = values[i];
        values[i] = saved + eps;
        const float up = rig.evaluate();
        values[i] = saved - eps;
        const float down = rig.evaluate();
        values[i] = saved;
        const float fd = (up - down) / (2 * eps);
        EXPECT_NEAR(analytic[i], fd, 5e-3 + 0.02 * std::abs(fd))
            << rig.model.param(pid).name << "[" << i << "]";
        ++checked;
    }
    EXPECT_GT(checked, 4u);
}

std::string
paramName(const testing::TestParamInfo<int>& info)
{
    switch (info.param) {
      case 0: return "MatrixA";
      case 1: return "MatrixB";
      case 2: return "Bias";
      default: return "Embedding";
    }
}

INSTANTIATE_TEST_SUITE_P(AllParams, ParamGradientTest,
                         testing::Values(0, 1, 2, 3), paramName);

TEST(ScaleOp, ForwardAndBackwardSemantics)
{
    gpusim::Device device(gpusim::DeviceSpec{}, 1u << 20);
    graph::Model model;
    auto w = model.addWeightMatrix("W", 3, 3);
    common::Rng rng(72);
    model.allocate(device, rng);

    graph::ComputationGraph cg;
    auto x = graph::input(cg, {1.0f, 2.0f, 3.0f});
    auto y = graph::scale(x, -2.5f);
    auto m = graph::matvec(model, w, y);
    auto loss = graph::pickNegLogSoftmax(m, 0);
    const auto live = graph::reachableFrom(cg, loss.id);
    exec::placeForward(device, model, cg, live);
    for (graph::NodeId id = 0; id < cg.size(); ++id)
        exec::computeNodeForward(device, model, cg, id);
    const float* out = device.memory().data(cg.node(y.id).fwd);
    EXPECT_FLOAT_EQ(out[0], -2.5f);
    EXPECT_FLOAT_EQ(out[1], -5.0f);
    EXPECT_FLOAT_EQ(out[2], -7.5f);
}

TEST(ScaleOp, AverageIsSumOverCount)
{
    gpusim::Device device(gpusim::DeviceSpec{}, 1u << 20);
    graph::Model model;
    common::Rng rng(73);
    model.allocate(device, rng);

    graph::ComputationGraph cg;
    auto a = graph::input(cg, {2.0f, 4.0f});
    auto b = graph::input(cg, {4.0f, 8.0f});
    auto avg = graph::average({a, b});
    const auto live = std::vector<bool>(cg.size(), true);
    exec::placeForward(device, model, cg, live);
    for (graph::NodeId id = 0; id < cg.size(); ++id)
        exec::computeNodeForward(device, model, cg, id);
    const float* out = device.memory().data(cg.node(avg.id).fwd);
    EXPECT_FLOAT_EQ(out[0], 3.0f);
    EXPECT_FLOAT_EQ(out[1], 6.0f);
}

TEST(ScaleOp, DifferentConstantsDoNotBatch)
{
    gpusim::Device device(gpusim::DeviceSpec{}, 1u << 20);
    graph::Model model;
    common::Rng rng(74);
    model.allocate(device, rng);
    graph::ComputationGraph cg;
    auto x = graph::input(cg, {1.0f, 2.0f});
    auto s1 = graph::scale(x, 0.5f);
    auto s2 = graph::scale(x, 0.25f);
    auto s3 = graph::scale(x, 0.5f);
    EXPECT_NE(graph::batchSignature(cg.node(s1.id)),
              graph::batchSignature(cg.node(s2.id)));
    EXPECT_EQ(graph::batchSignature(cg.node(s1.id)),
              graph::batchSignature(cg.node(s3.id)));
}

} // namespace
