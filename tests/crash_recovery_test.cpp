/**
 * @file
 * Crash-consistency suite for the durable fleet: the host-crash
 * fault domain, recovery from a cleanly shut down store, and the
 * crash-point explorer's stratified sweeps at 1 and 8 host threads.
 * The explorer's invariants are the PR's headline guarantees: crash
 * at any event boundary, and after recovery no admitted High-class
 * request is lost, the completion set is bitwise identical to the
 * no-crash run, and counters reconcile by construction.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>

#include "common/rng.hpp"
#include "data/treebank.hpp"
#include "data/vocab.hpp"
#include "durable/stable_store.hpp"
#include "gpusim/faults.hpp"
#include "models/tree_lstm.hpp"
#include "serve/crash_explorer.hpp"
#include "serve/fleet.hpp"
#include "vpps/handle.hpp"

namespace {

TEST(HostCrashDomain, FiresAtTheConfiguredBoundaryOnce)
{
    gpusim::FaultPlan plan;
    EXPECT_FALSE(plan.anyHostDomain());
    plan.host_crash_at_event = 5;
    EXPECT_TRUE(plan.anyHostDomain());
    gpusim::FaultInjector inj(plan);
    for (std::uint64_t e = 0; e < 5; ++e)
        EXPECT_FALSE(inj.hostCrashAtBoundary(e)) << e;
    EXPECT_TRUE(inj.hostCrashAtBoundary(5));
    EXPECT_TRUE(inj.hostCrashAtBoundary(6));
    EXPECT_EQ(inj.injected().host_crashes, 1u)
        << "the domain logs its category once, not per query";
}

TEST(HostCrashDomain, DisabledPlanNeverFires)
{
    gpusim::FaultInjector inj(gpusim::FaultPlan{});
    for (std::uint64_t e = 0; e < 100; ++e)
        EXPECT_FALSE(inj.hostCrashAtBoundary(e));
    EXPECT_EQ(inj.injected().host_crashes, 0u);
}

vpps::VppsOptions
rigOpts()
{
    vpps::VppsOptions opts;
    opts.rpw = 2;
    opts.async = false;
    opts.degrade_on_failure = false;
    opts.host_threads = 1;
    opts.max_relaunch_attempts = 2;
    return opts;
}

/** Fixed-seed replica, bitwise identical across constructions --
 *  what lets a second fleet recover against the first one's
 *  checkpointed parameter blob. */
struct Replica
{
    gpusim::Device device{gpusim::DeviceSpec{}, 48u << 20};
    common::Rng data_rng{121};
    data::Vocab vocab{300, 10000};
    data::Treebank bank{vocab, 8, data_rng, 7.0, 4, 10};
    common::Rng param_rng{122};
    std::unique_ptr<models::TreeLstmModel> bm;
    std::unique_ptr<vpps::Handle> handle;

    Replica()
    {
        unsetenv("VPPS_FAULT_RATE");
        unsetenv("VPPS_FAULT_SEED");
        bm = std::make_unique<models::TreeLstmModel>(
            bank, vocab, 16, 32, device, param_rng);
        handle = std::make_unique<vpps::Handle>(
            bm->model(), device, rigOpts());
    }

    serve::FleetReplica
    slot(const char* name)
    {
        return serve::FleetReplica{name, &device, bm.get(),
                                   handle.get()};
    }
};

std::vector<serve::Request>
smallArrivals(std::size_t n, std::size_t dataset_size)
{
    std::vector<serve::Request> out;
    for (std::size_t i = 0; i < n; ++i) {
        serve::Request r;
        r.id = i + 1;
        r.cls = (i % 4 == 0) ? serve::RequestClass::Low
                             : serve::RequestClass::High;
        r.input_index = i % dataset_size;
        r.arrival_us = 1000.0 * static_cast<double>(i + 1);
        r.deadline_us = r.arrival_us + 1.0e9;
        out.push_back(r);
    }
    return out;
}

serve::FleetConfig
durableConfig(durable::StableStore* store, std::size_t n,
              long long crash_at = -1)
{
    serve::FleetConfig fc;
    fc.admission.queue_capacity = n + 8;
    fc.admission.shrink_watermark = n + 8;
    fc.admission.shed_watermark = n + 8;
    fc.max_failovers_high = 2;
    fc.max_failovers_low = 1;
    fc.standby_opts = rigOpts();
    fc.durability.store = store;
    fc.durability.dir = "fleet";
    fc.durability.checkpoint_every_completions = 4;
    fc.durability.host_faults.host_crash_at_event = crash_at;
    return fc;
}

TEST(CrashRecovery, CleanShutdownRestoresCountersAndResponses)
{
    const std::size_t n = 10;
    durable::StableStore store;
    std::map<std::uint64_t, std::uint32_t> first_responses;
    serve::FleetCounters first;
    std::uint64_t first_generation = 0;
    {
        Replica r0, r1;
        serve::Fleet fleet({r0.slot("r0"), r1.slot("r1")},
                           durableConfig(&store, n));
        fleet.run(smallArrivals(n, r0.bm->datasetSize()));
        ASSERT_FALSE(fleet.crashed());
        first = fleet.counters();
        EXPECT_EQ(first.completed, n);
        first_generation = fleet.generation();
        EXPECT_GE(first_generation, 1u);
        for (const auto& [id, v] : fleet.responses()) {
            std::uint32_t bits = 0;
            std::memcpy(&bits, &v, 4);
            first_responses.emplace(id, bits);
        }
    }

    // A new process over the same store: construction recovers from
    // the manifest plus full WAL replay before any new arrival.
    Replica r0, r1;
    serve::Fleet fleet({r0.slot("r0"), r1.slot("r1")},
                       durableConfig(&store, n));
    ASSERT_TRUE(fleet.recovery().has_value());
    EXPECT_GT(fleet.generation(), first_generation)
        << "recovery installs a fresh generation";
    EXPECT_EQ(fleet.recovery()->in_doubt, 0u)
        << "a clean shutdown leaves nothing admitted-unfinalized";
    EXPECT_GT(fleet.recovery()->re_jit_us, 0.0)
        << "recovery must charge the VPPS re-specialization";

    const serve::FleetCounters& c = fleet.counters();
    EXPECT_TRUE(c.reconciled());
    EXPECT_EQ(c.arrivals, first.arrivals);
    EXPECT_EQ(c.admitted, first.admitted);
    EXPECT_EQ(c.completed, first.completed);
    EXPECT_EQ(c.admitted_high, first.admitted_high);
    EXPECT_EQ(c.completed_high, first.completed_high);
    EXPECT_EQ(c.timed_out, first.timed_out);
    EXPECT_EQ(c.failed, first.failed);

    ASSERT_EQ(fleet.responses().size(), first_responses.size());
    for (const auto& [id, v] : fleet.responses()) {
        std::uint32_t bits = 0;
        std::memcpy(&bits, &v, 4);
        const auto it = first_responses.find(id);
        ASSERT_NE(it, first_responses.end()) << "id " << id;
        EXPECT_EQ(it->second, bits)
            << "restored response bits diverged for id " << id;
    }

    // The recovered fleet keeps serving.
    auto more = smallArrivals(3, r0.bm->datasetSize());
    for (auto& r : more) {
        r.id += 1000;
        r.arrival_us += fleet.recovery()->recovery_us + 1.0e7;
        r.deadline_us = r.arrival_us + 1.0e9;
    }
    fleet.run(more);
    EXPECT_EQ(fleet.counters().completed, first.completed + 3);
    EXPECT_TRUE(fleet.counters().reconciled());
}

TEST(CrashRecovery, CrashOnlyConfigHaltsTheLoopAtTheBoundary)
{
    Replica r0, r1;
    // No store: the host-crash domain alone must still halt the
    // event loop deterministically (nothing persisted, nothing
    // recovered).
    serve::Fleet fleet({r0.slot("r0"), r1.slot("r1")},
                       durableConfig(nullptr, 6, 0));
    fleet.run(smallArrivals(6, r0.bm->datasetSize()));
    EXPECT_TRUE(fleet.crashed());
    EXPECT_EQ(fleet.eventsProcessed(), 0u)
        << "crash at boundary 0 precedes the first event";
    EXPECT_EQ(fleet.counters().completed, 0u);

    // A crashed fleet is inert: further run() calls are no-ops.
    fleet.run(smallArrivals(6, r0.bm->datasetSize()));
    EXPECT_EQ(fleet.eventsProcessed(), 0u);
}

TEST(CrashRecovery, ExplorerSweepHoldsAtOneHostThread)
{
    serve::CrashExplorerConfig cfg;
    cfg.host_threads = 1;
    cfg.n_requests = 20;
    cfg.max_points = 6;
    const auto rep = serve::exploreCrashPoints(cfg);
    EXPECT_EQ(rep.baseline_completed, cfg.n_requests)
        << "the scenario must complete every arrival";
    EXPECT_GE(rep.points_tested.size(), 5u);
    EXPECT_TRUE(rep.passed()) << [&] {
        std::string msg = "violations:";
        for (const auto& f : rep.failures)
            for (const auto& v : f.violations)
                msg += "\n  " + v;
        return msg;
    }();
}

TEST(CrashRecovery, ExplorerSweepHoldsAtEightHostThreads)
{
    serve::CrashExplorerConfig cfg;
    cfg.host_threads = 8;
    cfg.n_requests = 20;
    cfg.max_points = 5;
    const auto rep = serve::exploreCrashPoints(cfg);
    EXPECT_EQ(rep.baseline_completed, cfg.n_requests);
    EXPECT_TRUE(rep.passed()) << [&] {
        std::string msg = "violations:";
        for (const auto& f : rep.failures)
            for (const auto& v : f.violations)
                msg += "\n  " + v;
        return msg;
    }();
}

TEST(CrashRecovery, ExplorerHoldsUnderGroupCommitAndFrequentCheckpoints)
{
    // Batched WAL sync leaves outcome records unsynced at the crash;
    // those requests come back in-doubt and must re-complete bitwise
    // identically. High-class admits still force a sync, so the
    // no-lost-High invariant holds even at batch 4.
    serve::CrashExplorerConfig cfg;
    cfg.host_threads = 1;
    cfg.n_requests = 20;
    cfg.max_points = 5;
    cfg.wal_sync_batch = 4;
    cfg.checkpoint_every_completions = 4;
    const auto rep = serve::exploreCrashPoints(cfg);
    EXPECT_EQ(rep.baseline_completed, cfg.n_requests);
    EXPECT_TRUE(rep.passed()) << [&] {
        std::string msg = "violations:";
        for (const auto& f : rep.failures)
            for (const auto& v : f.violations)
                msg += "\n  " + v;
        return msg;
    }();
}

} // namespace
