/** @file Unit tests for script generation and script-guided execution
 *  (Section III-B): barrier structure, coverage, load balancing, and
 *  interpretation invariants. */
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "common/rng.hpp"
#include "data/treebank.hpp"
#include "data/vocab.hpp"
#include "graph/level_sort.hpp"
#include "models/tree_lstm.hpp"
#include "train/harness.hpp"
#include "vpps/script_exec.hpp"
#include "vpps/script_gen.hpp"

namespace {

struct ScriptRig
{
    gpusim::Device device{gpusim::DeviceSpec{}, 32u << 20};
    common::Rng data_rng{21};
    data::Vocab vocab{200};
    data::Treebank bank{vocab, 8, data_rng, 8.0, 4, 12};
    common::Rng param_rng{22};
    models::TreeLstmModel model{bank, vocab, 32, 48, device,
                                param_rng};
    gpusim::HostSpec host;
    vpps::CompiledKernel kernel;

    explicit ScriptRig(int rpw = 2, bool grads = true)
    {
        vpps::VppsOptions opts;
        opts.cache_gradients = grads;
        auto plan = vpps::DistributionPlan::buildAuto(
            model.model(), device.spec(), opts, rpw);
        const vpps::KernelSpecializer specializer(device.spec());
        kernel = specializer.specialize(model.model(), plan);
    }

    vpps::GeneratedBatch
    generate(std::size_t batch = 2)
    {
        cg.clear();
        auto loss = train::buildSuperGraph(model, cg, 0, batch);
        const vpps::ScriptGenerator gen(kernel, host);
        return gen.generate(device, model.model(), cg, loss);
    }

    graph::ComputationGraph cg;
};

/** Decode a sealed script back into (vpp, opcode, imm) tuples. */
struct Decoded
{
    int vpp;
    vpps::Opcode op;
    std::uint32_t imm;
    std::vector<std::uint32_t> operands;
};

std::vector<Decoded>
decodeAll(const vpps::Script& script)
{
    std::vector<Decoded> out;
    for (int vpp = 0; vpp < script.numVpps(); ++vpp) {
        auto [pc, end] = script.vppStream(vpp);
        while (pc != end) {
            Decoded d;
            d.vpp = vpp;
            d.op = vpps::preambleOpcode(pc[0]);
            d.imm = vpps::preambleImm(pc[0]);
            const int n = vpps::operandWords(d.op);
            d.operands.assign(pc + 1, pc + 1 + n);
            out.push_back(std::move(d));
            pc += 1 + n;
        }
    }
    return out;
}

TEST(ScriptGen, SignalCountsMatchExpectations)
{
    ScriptRig rig;
    const auto gb = rig.generate();
    std::map<std::uint32_t, int> signals;
    for (const auto& d : decodeAll(gb.script))
        if (d.op == vpps::Opcode::Signal)
            ++signals[d.imm];
    const auto& expected = gb.script.expectedSignals();
    for (const auto& [barrier, count] : signals)
        EXPECT_EQ(static_cast<std::uint32_t>(count),
                  expected.at(barrier))
            << "barrier " << barrier;
    EXPECT_EQ(signals.size(), gb.stats.barriers);
}

TEST(ScriptGen, EveryVppWaitsBeforeItsPhaseWork)
{
    ScriptRig rig;
    const auto gb = rig.generate();
    // Per VPP: the stream must alternate [wait?] work* signal per
    // phase: a Wait on barrier b may only appear after some other
    // VPP's Signal structure guarantees it -- structurally, waits
    // must reference barriers smaller than the next signal emitted
    // by the same VPP.
    for (int vpp = 0; vpp < gb.script.numVpps(); ++vpp) {
        auto [pc, end] = gb.script.vppStream(vpp);
        std::int64_t last_wait = -1;
        while (pc != end) {
            const auto op = vpps::preambleOpcode(pc[0]);
            const auto imm = vpps::preambleImm(pc[0]);
            if (op == vpps::Opcode::Wait) {
                EXPECT_GT(static_cast<std::int64_t>(imm), last_wait)
                    << "waits must use increasing barrier indices";
                last_wait = imm;
            } else if (op == vpps::Opcode::Signal) {
                EXPECT_GT(static_cast<std::int64_t>(imm), last_wait)
                    << "a VPP signals a phase after waiting on the "
                       "previous one";
            }
            pc += 1 + vpps::operandWords(op);
        }
    }
}

TEST(ScriptGen, MatrixOpsTargetEveryCachingVpp)
{
    ScriptRig rig;
    const auto gb = rig.generate();
    const auto& plan = rig.kernel.plan;
    // Collect which VPPs got a MatVec for each matrix.
    std::map<std::uint32_t, std::set<int>> seen;
    for (const auto& d : decodeAll(gb.script))
        if (d.op == vpps::Opcode::MatVec)
            seen[d.imm].insert(d.vpp);
    ASSERT_FALSE(seen.empty());
    for (const auto& [m, vpps_seen] : seen) {
        const auto& holders = plan.vppsOf(m, false);
        EXPECT_EQ(vpps_seen.size(), holders.size())
            << "matvec against matrix " << m
            << " must run on every VPP caching its rows";
    }
}

TEST(ScriptGen, MinLoadTargetingSpreadsVectorOps)
{
    ScriptRig rig;
    const auto gb = rig.generate(4);
    std::map<int, int> vec_ops_per_vpp;
    for (const auto& d : decodeAll(gb.script)) {
        if (d.op == vpps::Opcode::Tanh ||
            d.op == vpps::Opcode::Sigmoid ||
            d.op == vpps::Opcode::Mul || d.op == vpps::Opcode::Copy)
            ++vec_ops_per_vpp[d.vpp];
    }
    // With hundreds of vector ops and 160 VPPs, min-load targeting
    // must involve many distinct VPPs.
    EXPECT_GT(vec_ops_per_vpp.size(), 32u);
}

TEST(ScriptGen, GemmFallbackStagesEveryMatvecPair)
{
    ScriptRig rig(2, /*grads=*/false);
    const auto gb = rig.generate();
    EXPECT_FALSE(gb.gemm_staging.empty());
    // No Outer instructions; instead staging copies exist.
    std::size_t outers = 0;
    for (const auto& d : decodeAll(gb.script))
        outers += d.op == vpps::Opcode::Outer ? 1 : 0;
    EXPECT_EQ(outers, 0u);
    // Counts per matrix equal the number of live MatVec nodes.
    std::map<graph::ParamId, std::uint32_t> uses;
    const auto live = graph::reachableFrom(
        rig.cg, gb.loss_node);
    for (graph::NodeId id = 0; id < rig.cg.size(); ++id)
        if (live[id] &&
            rig.cg.node(id).op == graph::OpType::MatVec)
            ++uses[rig.cg.node(id).param];
    for (const auto& st : gb.gemm_staging)
        EXPECT_EQ(st.count, uses.at(st.matrix));
}

TEST(ScriptExec, InterpretsToCompletionWithoutDeadlock)
{
    ScriptRig rig;
    auto gb = rig.generate();
    vpps::ScriptExecutor executor(rig.device);
    const auto result = executor.run(rig.kernel, gb,
                                     rig.model.model(), rig.cg)
                            .value();
    EXPECT_GT(result.instructions, 0u);
    EXPECT_GT(result.kernel_us, 0.0);
    EXPECT_GE(result.makespan_us, result.mean_vpp_us);
    EXPECT_TRUE(std::isfinite(result.loss));
}

TEST(ScriptExec, WeightTrafficEqualsCachedBytesPerInvocation)
{
    ScriptRig rig;
    auto gb = rig.generate();
    rig.device.traffic().reset();
    vpps::ScriptExecutor executor(rig.device);
    ASSERT_TRUE(
        executor.run(rig.kernel, gb, rig.model.model(), rig.cg).ok());
    const double loads = rig.device.traffic().loadBytes(
        gpusim::MemSpace::Weights);
    EXPECT_DOUBLE_EQ(loads,
                     rig.model.model().totalWeightMatrixBytes());
    // The epilogue stores the updated master copies once.
    const double stores = rig.device.traffic().storeBytes(
        gpusim::MemSpace::Weights);
    EXPECT_DOUBLE_EQ(stores,
                     rig.model.model().totalWeightMatrixBytes());
}

TEST(ScriptExec, LargerRpwEmitsFewerMatrixInstructions)
{
    ScriptRig fine(1);
    ScriptRig coarse(4);
    const auto fine_gb = fine.generate();
    const auto coarse_gb = coarse.generate();
    EXPECT_GT(fine_gb.script.numInstructions(),
              coarse_gb.script.numInstructions())
        << "higher rpw concentrates rows on fewer warps/VPPs";
}

/** AddN with more arguments than one instruction can carry must be
 *  legalized into an Add3 followed by Accum instructions on the same
 *  VPP (the 20-byte instruction cap of Section III-B1). */
TEST(ScriptGen, WideAddNLegalizesToChain)
{
    gpusim::Device device(gpusim::DeviceSpec{}, 8u << 20);
    graph::Model model;
    auto w = model.addWeightMatrix("W", 8, 8);
    common::Rng rng(23);
    model.allocate(device, rng);

    graph::ComputationGraph cg;
    std::vector<graph::Expr> terms;
    for (int i = 0; i < 5; ++i)
        terms.push_back(graph::input(
            cg, std::vector<float>(8, static_cast<float>(i + 1))));
    auto sum = graph::add(terms);
    auto loss =
        graph::pickNegLogSoftmax(graph::matvec(model, w, sum), 0);

    vpps::VppsOptions opts;
    auto plan = vpps::DistributionPlan::buildAuto(model,
                                                  device.spec(), opts,
                                                  2);
    const vpps::KernelSpecializer specializer(device.spec());
    auto kernel = specializer.specialize(model, plan);
    const gpusim::HostSpec host;
    const vpps::ScriptGenerator gen(kernel, host);
    auto gb = gen.generate(device, model, cg, loss);

    // Find the Add3 + 2x Accum chain, all on one VPP.
    int add3_vpp = -1;
    std::size_t accums = 0;
    for (const auto& d : decodeAll(gb.script)) {
        if (d.op == vpps::Opcode::Add3)
            add3_vpp = d.vpp;
        if (d.op == vpps::Opcode::Accum &&
            d.operands[0] == cg.node(sum.id).fwd) {
            EXPECT_EQ(d.vpp, add3_vpp)
                << "the accumulate chain must stay on one VPP";
            ++accums;
        }
    }
    ASSERT_NE(add3_vpp, -1);
    EXPECT_EQ(accums, 2u) << "5 args = Add3 + 2 Accum";

    // And the math comes out right: 1+2+3+4+5 = 15 per element.
    vpps::ScriptExecutor executor(device);
    ASSERT_TRUE(executor.run(kernel, gb, model, cg).ok());
    EXPECT_FLOAT_EQ(device.memory().data(cg.node(sum.id).fwd)[3],
                    15.0f);
}

TEST(ScriptGen, StatsAccountForBothDirections)
{
    ScriptRig rig;
    const auto gb = rig.generate();
    EXPECT_GT(gb.stats.fwd_instructions, 0u);
    EXPECT_GT(gb.stats.bwd_instructions, gb.stats.fwd_instructions)
        << "backward emits matvec-T and outer per matvec";
    EXPECT_GT(gb.stats.update_instructions, 0u);
    EXPECT_GT(gb.stats.fwd_sched_us, 0.0);
    EXPECT_GT(gb.stats.bwd_sched_us, 0.0);
    // Tree-LSTM leaves are lookups, so there is no Input staging.
    EXPECT_DOUBLE_EQ(gb.stats.input_bytes, 0.0);
    EXPECT_GT(gb.stats.zeroed_bytes, 0.0);
}

} // namespace
