/** @file Unit tests for node placement, kernel accounting, and the
 *  four baseline scheduling strategies. */
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.hpp"
#include "exec/agenda_batch_executor.hpp"
#include "exec/depth_batch_executor.hpp"
#include "exec/fold_executor.hpp"
#include "exec/kernels.hpp"
#include "exec/naive_executor.hpp"
#include "graph/level_sort.hpp"

namespace {

struct ExecRig
{
    gpusim::Device device{gpusim::DeviceSpec{}, 4u << 20};
    graph::Model model;
    graph::ParamId w, b, table;

    ExecRig()
    {
        w = model.addWeightMatrix("W", 8, 8);
        b = model.addBias("b", 8);
        table = model.addLookup("E", 16, 8);
        common::Rng rng(1);
        model.allocate(device, rng);
    }

    /** A small diamond-shaped graph ending in a loss. */
    graph::Expr
    buildGraph(graph::ComputationGraph& cg, std::uint32_t row = 0)
    {
        auto e = graph::lookup(cg, model, table, row);
        auto h1 = graph::tanh(graph::matvec(model, w, e) +
                              graph::parameter(cg, model, b));
        auto h2 = graph::sigmoid(graph::matvec(model, w, h1));
        auto mixed = graph::cmult(h1, h2);
        return graph::pickNegLogSoftmax(mixed, 3);
    }
};

TEST(Placement, ParamVecAliasesMasterCopy)
{
    ExecRig rig;
    graph::ComputationGraph cg;
    auto loss = rig.buildGraph(cg);
    const auto live = graph::reachableFrom(cg, loss.id);
    exec::placeForward(rig.device, rig.model, cg, live);
    for (graph::NodeId id = 0; id < cg.size(); ++id) {
        const auto& n = cg.node(id);
        if (n.op == graph::OpType::ParamVec) {
            EXPECT_EQ(n.fwd, rig.model.param(n.param).value)
                << "bias leaves must alias, not copy";
        } else if (live[id]) {
            EXPECT_NE(n.fwd, gpusim::DeviceMemory::kNullOffset)
                << graph::opName(n.op);
        }
    }
}

TEST(Placement, BackwardAllocatesGradsAndSeedsLoss)
{
    ExecRig rig;
    graph::ComputationGraph cg;
    auto loss = rig.buildGraph(cg);
    const auto live = graph::reachableFrom(cg, loss.id);
    exec::placeForward(rig.device, rig.model, cg, live);
    const double zeroed = exec::placeBackward(rig.device, rig.model,
                                              cg, live, loss.id);
    EXPECT_GT(zeroed, 0.0);
    EXPECT_EQ(rig.device.memory().data(cg.node(loss.id).grad)[0],
              1.0f);
    // Bias gradient aliases the parameter gradient buffer.
    for (graph::NodeId id = 0; id < cg.size(); ++id) {
        const auto& n = cg.node(id);
        if (live[id] && n.op == graph::OpType::ParamVec) {
            EXPECT_EQ(n.grad, rig.model.param(n.param).grad);
        }
    }
}

TEST(Kernels, MatVecGroupLoadsWeightsOncePerGroup)
{
    ExecRig rig;
    graph::ComputationGraph cg;
    auto x1 = graph::input(cg, std::vector<float>(8, 1.0f));
    auto x2 = graph::input(cg, std::vector<float>(8, 2.0f));
    auto m1 = graph::matvec(rig.model, rig.w, x1);
    auto m2 = graph::matvec(rig.model, rig.w, x2);
    auto s = graph::add({m1, m2});
    auto loss = graph::pickNegLogSoftmax(s, 0);
    const auto live = graph::reachableFrom(cg, loss.id);
    exec::placeForward(rig.device, rig.model, cg, live);

    rig.device.traffic().reset();
    exec::runForwardGroup(rig.device, rig.model, cg, {m1.id, m2.id});
    const double w_bytes = rig.model.param(rig.w).bytes();
    EXPECT_DOUBLE_EQ(
        rig.device.traffic().loadBytes(gpusim::MemSpace::Weights),
        w_bytes)
        << "a batched group loads W once, not once per node";
}

/** Every strategy must produce a dependency-respecting cover of the
 *  live kernel-launching nodes. */
class ScheduleValidityTest
    : public testing::TestWithParam<const char*>
{
  protected:
    std::unique_ptr<exec::Executor>
    make(gpusim::Device& device) const
    {
        const std::string which = GetParam();
        const gpusim::HostSpec host;
        if (which == "naive")
            return std::make_unique<exec::NaiveExecutor>(device, host);
        if (which == "depth")
            return std::make_unique<exec::DepthBatchExecutor>(device,
                                                              host);
        if (which == "agenda")
            return std::make_unique<exec::AgendaBatchExecutor>(device,
                                                               host);
        return std::make_unique<exec::FoldExecutor>(device, host);
    }
};

TEST_P(ScheduleValidityTest, TrainsAndProducesFiniteLoss)
{
    ExecRig rig;
    auto executor = make(rig.device);
    graph::ComputationGraph cg;
    std::vector<graph::Expr> losses;
    for (std::uint32_t i = 0; i < 4; ++i)
        losses.push_back(rig.buildGraph(cg, i));
    auto loss = graph::sumLosses(std::move(losses));
    const float value =
        executor->trainBatch(rig.model, cg, loss);
    EXPECT_TRUE(std::isfinite(value));
    EXPECT_GT(value, 0.0f);
    const auto& stats = executor->stats();
    EXPECT_EQ(stats.batches, 1u);
    EXPECT_GT(stats.launches, 0u);
    EXPECT_GT(stats.cpu_us, 0.0);
    EXPECT_GT(stats.gpu_us, 0.0);
    // The pool must be fully recycled between batches.
    EXPECT_EQ(rig.device.memory().used(),
              rig.model.totalScalars() * 2);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, ScheduleValidityTest,
                         testing::Values("naive", "depth", "agenda",
                                         "fold"),
                         [](const auto& info) {
                             return std::string(info.param);
                         });

TEST(Strategies, BatchingReducesLaunchesVersusNaive)
{
    auto launches = [](auto make_executor) {
        ExecRig rig;
        auto executor = make_executor(rig.device);
        graph::ComputationGraph cg;
        std::vector<graph::Expr> losses;
        for (std::uint32_t i = 0; i < 8; ++i)
            losses.push_back(rig.buildGraph(cg, i));
        auto loss = graph::sumLosses(std::move(losses));
        executor->trainBatch(rig.model, cg, loss);
        return executor->stats().launches;
    };
    const gpusim::HostSpec host;
    const auto naive = launches([&](gpusim::Device& d) {
        return std::make_unique<exec::NaiveExecutor>(d, host);
    });
    const auto depth = launches([&](gpusim::Device& d) {
        return std::make_unique<exec::DepthBatchExecutor>(d, host);
    });
    const auto agenda = launches([&](gpusim::Device& d) {
        return std::make_unique<exec::AgendaBatchExecutor>(d, host);
    });
    EXPECT_LT(depth, naive / 2);
    EXPECT_LE(agenda, depth)
        << "agenda batching merges at least as well as depth";
}

TEST(Strategies, GroupSizeCapIsHonored)
{
    graph::ComputationGraph cg;
    ExecRig rig;
    std::vector<graph::NodeId> matvecs;
    for (int i = 0; i < 10; ++i) {
        auto x = graph::input(cg, std::vector<float>(8, 1.0f));
        matvecs.push_back(graph::matvec(rig.model, rig.w, x).id);
    }
    const auto groups = exec::groupBySignature(cg, matvecs, 4);
    EXPECT_EQ(groups.size(), 3u);
    std::size_t covered = 0;
    for (const auto& g : groups) {
        EXPECT_LE(g.size(), 4u);
        covered += g.size();
    }
    EXPECT_EQ(covered, matvecs.size());
}

TEST(Strategies, SparseEmbeddingUpdateTouchesOnlyUsedRows)
{
    ExecRig rig;
    graph::ComputationGraph cg;
    auto loss = rig.buildGraph(cg, 5); // touches row 5 only
    const auto live = graph::reachableFrom(cg, loss.id);
    exec::placeForward(rig.device, rig.model, cg, live);
    exec::placeBackward(rig.device, rig.model, cg, live, loss.id);

    rig.device.traffic().reset();
    exec::runParameterUpdates(rig.device, rig.model, cg, live);
    // Dense params: W (64 floats) and b (8): update loads value+grad.
    // Lookup: only 1 of 16 rows (8 floats).
    const double expected =
        2.0 * (rig.model.param(rig.w).bytes() +
               rig.model.param(rig.b).bytes()) +
        2.0 * 8 * 4.0;
    const double actual =
        rig.device.traffic().loadBytes(gpusim::MemSpace::Weights) +
        rig.device.traffic().loadBytes(
            gpusim::MemSpace::WeightGrads) +
        rig.device.traffic().loadBytes(gpusim::MemSpace::Params) +
        rig.device.traffic().loadBytes(gpusim::MemSpace::ParamGrads);
    EXPECT_DOUBLE_EQ(actual, expected);
}

} // namespace
