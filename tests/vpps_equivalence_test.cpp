/**
 * @file
 * End-to-end numerical equivalence: training through the VPPS
 * persistent kernel must produce the same losses and the same final
 * parameters as training through the per-node baseline executor --
 * the register cache, the script, the barriers, and the in-kernel
 * update are pure execution-strategy changes, not math changes.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "data/treebank.hpp"
#include "data/vocab.hpp"
#include "exec/agenda_batch_executor.hpp"
#include "exec/naive_executor.hpp"
#include "models/tree_lstm.hpp"
#include "train/harness.hpp"
#include "vpps/handle.hpp"

namespace {

constexpr std::size_t kPool = 24u << 20; // floats

struct Rig
{
    gpusim::Device device{gpusim::DeviceSpec{}, kPool};
    common::Rng data_rng{7};
    data::Vocab vocab{400};
    data::Treebank bank{vocab, 24, data_rng, 9.0, 4, 14};
    common::Rng param_rng{42};
    models::TreeLstmModel model{bank, vocab, 32, 48, device, param_rng};
};

/** Max relative difference between two models' parameter values. */
double
maxRelDiff(gpusim::Device& a, const graph::Model& ma, gpusim::Device& b,
           const graph::Model& mb)
{
    double worst = 0.0;
    for (graph::ParamId pid = 0; pid < ma.numParams(); ++pid) {
        const auto& pa = ma.param(pid);
        const auto& pb = mb.param(pid);
        const float* va = a.memory().data(pa.value);
        const float* vb = b.memory().data(pb.value);
        for (std::size_t i = 0; i < pa.shape.size(); ++i) {
            const double denom =
                std::max(1e-3, std::abs(static_cast<double>(va[i])));
            worst = std::max(
                worst,
                std::abs(static_cast<double>(va[i]) - vb[i]) / denom);
        }
    }
    return worst;
}

void
expectEquivalent(const vpps::VppsOptions& opts, double tol)
{
    Rig naive_rig;
    Rig vpps_rig;

    exec::NaiveExecutor naive(naive_rig.device, gpusim::HostSpec{});
    vpps::VppsOptions o = opts;
    o.async = false; // fb returns the current loss
    vpps::Handle handle(vpps_rig.model.model(), vpps_rig.device, o);

    const std::size_t batch = 4;
    for (std::size_t step = 0; step < 4; ++step) {
        graph::ComputationGraph cg_a;
        graph::Expr loss_a = train::buildSuperGraph(
            naive_rig.model, cg_a, step * batch, batch);
        const float la =
            naive.trainBatch(naive_rig.model.model(), cg_a, loss_a);

        graph::ComputationGraph cg_b;
        graph::Expr loss_b = train::buildSuperGraph(
            vpps_rig.model, cg_b, step * batch, batch);
        const float lb =
            handle.fb(vpps_rig.model.model(), cg_b, loss_b);

        EXPECT_NEAR(la, lb, tol * std::abs(la) + 1e-3)
            << "loss diverged at step " << step;
    }
    EXPECT_LT(maxRelDiff(naive_rig.device, naive_rig.model.model(),
                         vpps_rig.device, vpps_rig.model.model()),
              tol)
        << "final parameters diverged";
}

TEST(VppsEquivalence, MatchesNaiveWithCachedGradients)
{
    vpps::VppsOptions opts;
    opts.rpw = 2;
    expectEquivalent(opts, 2e-3);
}

TEST(VppsEquivalence, MatchesNaiveWithGemmFallback)
{
    vpps::VppsOptions opts;
    opts.rpw = 2;
    opts.cache_gradients = false;
    expectEquivalent(opts, 2e-3);
}

TEST(VppsEquivalence, MatchesNaiveWithRpw1)
{
    vpps::VppsOptions opts;
    opts.rpw = 1;
    expectEquivalent(opts, 2e-3);
}

TEST(VppsEquivalence, AgendaBaselineMatchesNaive)
{
    Rig a;
    Rig b;
    exec::NaiveExecutor naive(a.device, gpusim::HostSpec{});
    exec::AgendaBatchExecutor agenda(b.device, gpusim::HostSpec{});
    for (std::size_t step = 0; step < 3; ++step) {
        graph::ComputationGraph cg_a;
        auto la = naive.trainBatch(
            a.model.model(), cg_a,
            train::buildSuperGraph(a.model, cg_a, step * 4, 4));
        graph::ComputationGraph cg_b;
        auto lb = agenda.trainBatch(
            b.model.model(), cg_b,
            train::buildSuperGraph(b.model, cg_b, step * 4, 4));
        EXPECT_NEAR(la, lb, 1e-3 * std::abs(la) + 1e-4);
    }
    EXPECT_LT(maxRelDiff(a.device, a.model.model(), b.device,
                         b.model.model()),
              1e-3);
}

/** The stale-loss contract of Section III-D: with asynchrony on,
 *  fb() returns the previous batch's loss. */
TEST(VppsEquivalence, AsyncReturnsStaleLoss)
{
    Rig sync_rig;
    Rig async_rig;
    vpps::VppsOptions sync_opts;
    sync_opts.rpw = 2;
    sync_opts.async = false;
    vpps::VppsOptions async_opts;
    async_opts.rpw = 2;
    async_opts.async = true;
    vpps::Handle sync_h(sync_rig.model.model(), sync_rig.device,
                        sync_opts);
    vpps::Handle async_h(async_rig.model.model(), async_rig.device,
                         async_opts);

    float prev_sync = 0.0f;
    for (std::size_t step = 0; step < 3; ++step) {
        graph::ComputationGraph cg_a;
        const float ls = sync_h.fb(
            sync_rig.model.model(), cg_a,
            train::buildSuperGraph(sync_rig.model, cg_a, step * 4, 4));
        graph::ComputationGraph cg_b;
        const float la = async_h.fb(
            async_rig.model.model(), cg_b,
            train::buildSuperGraph(async_rig.model, cg_b, step * 4, 4));
        EXPECT_FLOAT_EQ(la, prev_sync)
            << "async fb must return the previous batch's loss";
        prev_sync = ls;
    }
    EXPECT_FLOAT_EQ(async_h.sync_get_latest_loss(), prev_sync);
}

} // namespace
