/**
 * @file
 * End-to-end numerical equivalence: training through the VPPS
 * persistent kernel must produce the same losses and the same final
 * parameters as training through the per-node baseline executor --
 * the register cache, the script, the barriers, and the in-kernel
 * update are pure execution-strategy changes, not math changes.
 */
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "data/ner_corpus.hpp"
#include "data/treebank.hpp"
#include "data/vocab.hpp"
#include "exec/agenda_batch_executor.hpp"
#include "exec/naive_executor.hpp"
#include "models/bigru_tagger.hpp"
#include "models/rvnn.hpp"
#include "models/td_lstm.hpp"
#include "models/tree_lstm.hpp"
#include "train/harness.hpp"
#include "vpps/handle.hpp"

namespace {

constexpr std::size_t kPool = 24u << 20; // floats

struct Rig
{
    gpusim::Device device{gpusim::DeviceSpec{}, kPool};
    common::Rng data_rng{7};
    data::Vocab vocab{400};
    data::Treebank bank{vocab, 24, data_rng, 9.0, 4, 14};
    common::Rng param_rng{42};
    models::TreeLstmModel model{bank, vocab, 32, 48, device, param_rng};
};

/** Max relative difference between two models' parameter values. */
double
maxRelDiff(gpusim::Device& a, const graph::Model& ma, gpusim::Device& b,
           const graph::Model& mb)
{
    double worst = 0.0;
    for (graph::ParamId pid = 0; pid < ma.numParams(); ++pid) {
        const auto& pa = ma.param(pid);
        const auto& pb = mb.param(pid);
        const float* va = a.memory().data(pa.value);
        const float* vb = b.memory().data(pb.value);
        for (std::size_t i = 0; i < pa.shape.size(); ++i) {
            const double denom =
                std::max(1e-3, std::abs(static_cast<double>(va[i])));
            worst = std::max(
                worst,
                std::abs(static_cast<double>(va[i]) - vb[i]) / denom);
        }
    }
    return worst;
}

void
expectEquivalent(const vpps::VppsOptions& opts, double tol)
{
    Rig naive_rig;
    Rig vpps_rig;

    exec::NaiveExecutor naive(naive_rig.device, gpusim::HostSpec{});
    vpps::VppsOptions o = opts;
    o.async = false; // fb returns the current loss
    vpps::Handle handle(vpps_rig.model.model(), vpps_rig.device, o);

    const std::size_t batch = 4;
    for (std::size_t step = 0; step < 4; ++step) {
        graph::ComputationGraph cg_a;
        graph::Expr loss_a = train::buildSuperGraph(
            naive_rig.model, cg_a, step * batch, batch);
        const float la =
            naive.trainBatch(naive_rig.model.model(), cg_a, loss_a);

        graph::ComputationGraph cg_b;
        graph::Expr loss_b = train::buildSuperGraph(
            vpps_rig.model, cg_b, step * batch, batch);
        const float lb =
            handle.fb(vpps_rig.model.model(), cg_b, loss_b);

        EXPECT_NEAR(la, lb, tol * std::abs(la) + 1e-3)
            << "loss diverged at step " << step;
    }
    EXPECT_LT(maxRelDiff(naive_rig.device, naive_rig.model.model(),
                         vpps_rig.device, vpps_rig.model.model()),
              tol)
        << "final parameters diverged";
}

TEST(VppsEquivalence, MatchesNaiveWithCachedGradients)
{
    vpps::VppsOptions opts;
    opts.rpw = 2;
    expectEquivalent(opts, 2e-3);
}

TEST(VppsEquivalence, MatchesNaiveWithGemmFallback)
{
    vpps::VppsOptions opts;
    opts.rpw = 2;
    opts.cache_gradients = false;
    expectEquivalent(opts, 2e-3);
}

TEST(VppsEquivalence, MatchesNaiveWithRpw1)
{
    vpps::VppsOptions opts;
    opts.rpw = 1;
    expectEquivalent(opts, 2e-3);
}

TEST(VppsEquivalence, AgendaBaselineMatchesNaive)
{
    Rig a;
    Rig b;
    exec::NaiveExecutor naive(a.device, gpusim::HostSpec{});
    exec::AgendaBatchExecutor agenda(b.device, gpusim::HostSpec{});
    for (std::size_t step = 0; step < 3; ++step) {
        graph::ComputationGraph cg_a;
        auto la = naive.trainBatch(
            a.model.model(), cg_a,
            train::buildSuperGraph(a.model, cg_a, step * 4, 4));
        graph::ComputationGraph cg_b;
        auto lb = agenda.trainBatch(
            b.model.model(), cg_b,
            train::buildSuperGraph(b.model, cg_b, step * 4, 4));
        EXPECT_NEAR(la, lb, 1e-3 * std::abs(la) + 1e-4);
    }
    EXPECT_LT(maxRelDiff(a.device, a.model.model(), b.device,
                         b.model.model()),
              1e-3);
}

// ---------------------------------------------------------------
// Host-parallel determinism: interpreting with N worker threads must
// be indistinguishable from the serial path -- bitwise-identical
// losses and parameters, identical DRAM-traffic tables, instruction
// counts, and simulated makespans. See DESIGN.md, "Host-parallel
// interpretation".
// ---------------------------------------------------------------

/** Everything one training run observes that threading could touch. */
struct DeterminismObservation
{
    std::vector<float> losses;
    std::vector<float> final_params;
    std::array<double, gpusim::TrafficStats::kNumSpaces> loads{};
    std::array<double, gpusim::TrafficStats::kNumSpaces> stores{};
    double atomics = 0.0;
    double kernel_us = 0.0;
    double wall_us = 0.0;
    std::uint64_t instructions = 0;
};

DeterminismObservation
trainObserved(const std::string& app, int host_threads,
              bool cache_gradients)
{
    gpusim::Device device{gpusim::DeviceSpec{}, 64u << 20};
    common::Rng data_rng{91};
    data::Vocab vocab{300, 10000};
    data::Treebank bank{vocab, 10, data_rng, 8.0, 4, 12};
    data::NerCorpus corpus{vocab, 10, data_rng, 8.0, 4, 12};
    common::Rng param_rng{92};

    std::unique_ptr<models::BenchmarkModel> model;
    if (app == "Tree-LSTM")
        model = std::make_unique<models::TreeLstmModel>(
            bank, vocab, 16, 32, device, param_rng);
    else if (app == "TD-LSTM")
        model = std::make_unique<models::TdLstmModel>(bank, vocab, 32,
                                                      device,
                                                      param_rng);
    else if (app == "BiGRU")
        model = std::make_unique<models::BiGruTagger>(
            corpus, vocab, 16, 24, 16, device, param_rng);
    else
        model = std::make_unique<models::RvnnModel>(bank, vocab, 32,
                                                    device, param_rng);

    vpps::VppsOptions opts;
    opts.rpw = 2;
    opts.async = false; // fb returns the current loss
    opts.host_threads = host_threads;
    opts.cache_gradients = cache_gradients;
    vpps::Handle handle(model->model(), device, opts);
    device.resetStats();
    handle.resetStats();

    DeterminismObservation obs;
    for (std::size_t step = 0; step < 4; ++step) {
        graph::ComputationGraph cg;
        graph::Expr loss =
            train::buildSuperGraph(*model, cg, step * 3, 3);
        obs.losses.push_back(handle.fb(model->model(), cg, loss));
    }
    for (std::size_t s = 0; s < gpusim::TrafficStats::kNumSpaces;
         ++s) {
        const auto space = static_cast<gpusim::MemSpace>(s);
        obs.loads[s] = device.traffic().loadBytes(space);
        obs.stores[s] = device.traffic().storeBytes(space);
    }
    obs.atomics = device.traffic().atomicOps();
    obs.kernel_us = handle.stats().kernel_us;
    obs.wall_us = handle.stats().wall_us;
    obs.instructions = handle.stats().instructions;
    const graph::Model& m = model->model();
    for (graph::ParamId pid = 0; pid < m.numParams(); ++pid) {
        const auto& p = m.param(pid);
        const float* v = device.memory().data(p.value);
        obs.final_params.insert(obs.final_params.end(), v,
                                v + p.shape.size());
    }
    return obs;
}

void
expectIdentical(const DeterminismObservation& serial,
                const DeterminismObservation& parallel)
{
    ASSERT_EQ(serial.losses.size(), parallel.losses.size());
    for (std::size_t i = 0; i < serial.losses.size(); ++i)
        EXPECT_EQ(serial.losses[i], parallel.losses[i])
            << "loss differs at step " << i;
    for (std::size_t s = 0; s < gpusim::TrafficStats::kNumSpaces;
         ++s) {
        EXPECT_EQ(serial.loads[s], parallel.loads[s])
            << "load bytes differ for space " << s;
        EXPECT_EQ(serial.stores[s], parallel.stores[s])
            << "store bytes differ for space " << s;
    }
    EXPECT_EQ(serial.atomics, parallel.atomics);
    EXPECT_EQ(serial.kernel_us, parallel.kernel_us);
    EXPECT_EQ(serial.wall_us, parallel.wall_us);
    EXPECT_EQ(serial.instructions, parallel.instructions);
    ASSERT_EQ(serial.final_params.size(),
              parallel.final_params.size());
    for (std::size_t i = 0; i < serial.final_params.size(); ++i)
        ASSERT_EQ(serial.final_params[i], parallel.final_params[i])
            << "final parameter " << i << " differs";
}

class HostParallelDeterminism
    : public testing::TestWithParam<const char*>
{
};

TEST_P(HostParallelDeterminism, Threads8MatchesSerialBitwise)
{
    expectIdentical(trainObserved(GetParam(), 1, true),
                    trainObserved(GetParam(), 8, true));
}

INSTANTIATE_TEST_SUITE_P(Apps, HostParallelDeterminism,
                         testing::Values("Tree-LSTM", "TD-LSTM",
                                         "BiGRU", "RvNN"));

/** The GEMM-fallback gradient strategy must be deterministic too. */
TEST(HostParallelDeterminismGemm, Threads8MatchesSerialBitwise)
{
    expectIdentical(trainObserved("Tree-LSTM", 1, false),
                    trainObserved("Tree-LSTM", 8, false));
}

/** Thread counts that do not divide the VPP count evenly. */
TEST(HostParallelDeterminismOdd, Threads3MatchesSerialBitwise)
{
    expectIdentical(trainObserved("TD-LSTM", 1, true),
                    trainObserved("TD-LSTM", 3, true));
}

/** The stale-loss contract of Section III-D: with asynchrony on,
 *  fb() returns the previous batch's loss. */
TEST(VppsEquivalence, AsyncReturnsStaleLoss)
{
    Rig sync_rig;
    Rig async_rig;
    vpps::VppsOptions sync_opts;
    sync_opts.rpw = 2;
    sync_opts.async = false;
    vpps::VppsOptions async_opts;
    async_opts.rpw = 2;
    async_opts.async = true;
    vpps::Handle sync_h(sync_rig.model.model(), sync_rig.device,
                        sync_opts);
    vpps::Handle async_h(async_rig.model.model(), async_rig.device,
                         async_opts);

    float prev_sync = 0.0f;
    for (std::size_t step = 0; step < 3; ++step) {
        graph::ComputationGraph cg_a;
        const float ls = sync_h.fb(
            sync_rig.model.model(), cg_a,
            train::buildSuperGraph(sync_rig.model, cg_a, step * 4, 4));
        graph::ComputationGraph cg_b;
        const float la = async_h.fb(
            async_rig.model.model(), cg_b,
            train::buildSuperGraph(async_rig.model, cg_b, step * 4, 4));
        EXPECT_FLOAT_EQ(la, prev_sync)
            << "async fb must return the previous batch's loss";
        prev_sync = ls;
    }
    EXPECT_FLOAT_EQ(async_h.sync_get_latest_loss(), prev_sync);
}

} // namespace
