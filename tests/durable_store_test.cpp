/**
 * @file
 * Unit suite for the simulated stable store, the WAL framing, and
 * the atomic checkpoint install protocol. The centerpiece is the
 * crash-point sweep: a checkpoint install interrupted after *every
 * possible store operation* -- with torn-write and bit-rot injection
 * at full rate -- must always leave a store that restores to exactly
 * generation N or generation N+1, never a blend and never garbage.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "durable/manifest.hpp"
#include "durable/stable_store.hpp"
#include "durable/wal.hpp"

namespace {

std::vector<std::uint8_t>
bytesOf(const std::string& s)
{
    return std::vector<std::uint8_t>(s.begin(), s.end());
}

TEST(StableStore, AppendSyncReadRoundTrip)
{
    durable::StableStore store;
    ASSERT_TRUE(store.append("f", bytesOf("hello ")).ok());
    ASSERT_TRUE(store.append("f", bytesOf("world")).ok());
    // A live process reads its own pending writes.
    auto r = store.read("f");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), bytesOf("hello world"));
    ASSERT_TRUE(store.sync("f").ok());
    store.crash();
    store.restart();
    r = store.read("f");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), bytesOf("hello world"))
        << "synced bytes must survive a crash";
}

TEST(StableStore, UnsyncedBytesDieOnCrash)
{
    durable::StableStore store; // torn rate 0: tails vanish whole
    ASSERT_TRUE(store.append("f", bytesOf("durable")).ok());
    ASSERT_TRUE(store.sync("f").ok());
    ASSERT_TRUE(store.append("f", bytesOf(" pending")).ok());
    store.crash();
    store.restart();
    auto r = store.read("f");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), bytesOf("durable"));
    EXPECT_EQ(store.stats().unsynced_bytes_lost, 8u);
}

TEST(StableStore, TornCrashKeepsAPrefixOfThePendingTail)
{
    durable::StorePlan plan;
    plan.torn_write_rate = 1.0;
    durable::StableStore store(plan);
    ASSERT_TRUE(store.append("f", bytesOf("durable|")).ok());
    ASSERT_TRUE(store.sync("f").ok());
    ASSERT_TRUE(store.append("f", bytesOf("pending-tail")).ok());
    store.crash();
    store.restart();
    auto r = store.read("f");
    ASSERT_TRUE(r.ok());
    const auto full = bytesOf("durable|pending-tail");
    ASSERT_LE(r.value().size(), full.size());
    ASSERT_GE(r.value().size(), 8u)
        << "the synced prefix can never shrink";
    EXPECT_EQ(store.stats().torn_files, 1u);
}

TEST(StableStore, WriteFileTruncatesDurableImmediately)
{
    durable::StableStore store;
    ASSERT_TRUE(store.append("f", bytesOf("old")).ok());
    ASSERT_TRUE(store.sync("f").ok());
    // O_TRUNC semantics: overwrite-in-place loses the old durable
    // bytes at once while the new ones are still pending -- exactly
    // the hazard the temp-write + rename protocol exists to avoid.
    ASSERT_TRUE(store.writeFile("f", bytesOf("newer")).ok());
    store.crash();
    store.restart();
    auto r = store.read("f");
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.value().empty())
        << "old contents gone, new contents never synced";
}

TEST(StableStore, ShortWriteSyncEventuallySucceedsWithRetry)
{
    durable::StorePlan plan;
    plan.short_write_rate = 0.8;
    durable::StableStore store(plan);
    std::vector<std::uint8_t> payload(4096, 0xAB);
    ASSERT_TRUE(store.append("f", payload).ok());
    ASSERT_TRUE(store.syncRetry("f", 64).ok());
    EXPECT_GT(store.stats().short_writes, 0u)
        << "at 0.8 rate some syncs must have been short";
    store.crash();
    store.restart();
    auto r = store.read("f");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), payload);
}

TEST(StableStore, DeadStoreIsUnavailableUntilRestart)
{
    durable::StableStore store;
    store.crash();
    EXPECT_TRUE(store.dead());
    auto st = store.append("f", bytesOf("x"));
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), common::ErrorCode::Unavailable);
    store.restart();
    EXPECT_FALSE(store.dead());
    EXPECT_TRUE(store.append("f", bytesOf("x")).ok());
}

TEST(StableStore, RenameIsAtomicAndKeepsPendingTail)
{
    durable::StableStore store;
    ASSERT_TRUE(store.append("a", bytesOf("synced")).ok());
    ASSERT_TRUE(store.sync("a").ok());
    ASSERT_TRUE(store.append("a", bytesOf("+tail")).ok());
    ASSERT_TRUE(store.rename("a", "b").ok());
    EXPECT_FALSE(store.exists("a"));
    auto r = store.read("b");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), bytesOf("synced+tail"));
    store.crash();
    store.restart();
    r = store.read("b");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), bytesOf("synced"))
        << "rename is durable; the pending tail still dies";
}

TEST(StableStore, ModeledLatencyAccumulates)
{
    durable::StableStore store;
    const double t0 = store.stats().sim_us;
    ASSERT_TRUE(store.append("f", bytesOf("x")).ok());
    ASSERT_TRUE(store.sync("f").ok());
    ASSERT_TRUE(store.rename("f", "g").ok());
    (void)store.read("g");
    EXPECT_GT(store.stats().sim_us, t0)
        << "every operation must charge simulated time";
}

TEST(Wal, RoundTripsRecordsInOrder)
{
    durable::StableStore store;
    durable::WalWriter w(store, "wal", 1);
    ASSERT_TRUE(w.append(1, bytesOf("alpha")).ok());
    ASSERT_TRUE(w.append(2, bytesOf("beta")).ok());
    EXPECT_EQ(w.pendingRecords(), 2u);
    ASSERT_TRUE(w.sync().ok());
    EXPECT_EQ(w.pendingRecords(), 0u);
    auto bytes = store.read("wal");
    ASSERT_TRUE(bytes.ok());
    const auto rr = durable::readWal(bytes.value(), 1);
    ASSERT_EQ(rr.records.size(), 2u);
    EXPECT_FALSE(rr.torn);
    EXPECT_EQ(rr.records[0].type, 1u);
    EXPECT_EQ(rr.records[0].seq, 1u);
    EXPECT_EQ(rr.records[0].payload, bytesOf("alpha"));
    EXPECT_EQ(rr.records[1].type, 2u);
    EXPECT_EQ(rr.records[1].seq, 2u);
}

TEST(Wal, CrashLeavesTheSyncedPrefix)
{
    durable::StorePlan plan;
    plan.torn_write_rate = 1.0; // worst case: tails tear, not vanish
    durable::StableStore store(plan);
    durable::WalWriter w(store, "wal", 1);
    ASSERT_TRUE(w.append(1, bytesOf("committed")).ok());
    ASSERT_TRUE(w.sync().ok());
    ASSERT_TRUE(w.append(1, bytesOf("in the group buffer")).ok());
    store.crash();
    store.restart();
    auto bytes = store.read("wal");
    ASSERT_TRUE(bytes.ok());
    const auto rr = durable::readWal(bytes.value(), 1);
    ASSERT_EQ(rr.records.size(), 1u)
        << "exactly the synced record survives";
    EXPECT_EQ(rr.records[0].payload, bytesOf("committed"));
}

TEST(Wal, SequenceDiscontinuityStopsReplay)
{
    // A frame from another segment spliced after the prefix must not
    // be silently accepted: its sequence number gives it away.
    auto good = durable::encodeWalRecord(1, 1, bytesOf("a"));
    const auto skipped = durable::encodeWalRecord(1, 3, bytesOf("b"));
    good.insert(good.end(), skipped.begin(), skipped.end());
    const auto rr = durable::readWal(good, 1);
    EXPECT_EQ(rr.records.size(), 1u);
    EXPECT_TRUE(rr.torn);
    EXPECT_NE(rr.tail_error.find("sequence"), std::string::npos)
        << rr.tail_error;
}

TEST(Manifest, RoundTrips)
{
    durable::Manifest m;
    m.generation = 42;
    m.checkpoint_file = "d/ckpt.42";
    m.checkpoint_bytes = 123;
    m.checkpoint_digest = 0xDEADBEEFull;
    m.wal_file = "d/wal.42";
    const auto img = durable::serializeManifest(m);
    auto r = durable::parseManifest(img);
    ASSERT_TRUE(r.ok()) << r.status().toString();
    EXPECT_EQ(r.value().generation, 42u);
    EXPECT_EQ(r.value().checkpoint_file, "d/ckpt.42");
    EXPECT_EQ(r.value().checkpoint_bytes, 123u);
    EXPECT_EQ(r.value().checkpoint_digest, 0xDEADBEEFull);
    EXPECT_EQ(r.value().wal_file, "d/wal.42");
}

TEST(CheckpointStore, InstallLoadAndGc)
{
    durable::StableStore store;
    durable::CheckpointStore cs(store, "d");
    EXPECT_FALSE(cs.hasState());
    const auto a = bytesOf("generation-one-payload");
    auto r1 = cs.install(1, a);
    ASSERT_TRUE(r1.ok()) << r1.status().toString();
    EXPECT_TRUE(cs.hasState());
    const auto b = bytesOf("generation-two-payload");
    auto r2 = cs.install(2, b, r1.value().wal_file);
    ASSERT_TRUE(r2.ok());
    auto loaded = cs.loadLatest();
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(loaded.value().manifest.generation, 2u);
    EXPECT_EQ(loaded.value().payload, b);
    // Generation 1's files must have been garbage-collected.
    EXPECT_FALSE(store.exists(cs.checkpointFile(1)));
    EXPECT_FALSE(store.exists(cs.walFile(1)));
    EXPECT_TRUE(store.exists(cs.checkpointFile(2)));
    EXPECT_TRUE(store.exists(cs.walFile(2)));
}

/**
 * The atomic-install sweep. A fresh store per crash point: install
 * generation 1 cleanly, then arm the store to crash after exactly j
 * successful mutating operations and attempt to install generation 2
 * -- with torn writes guaranteed and heavy bit rot inside every torn
 * region. After restart, loadLatest() must return a fully valid
 * generation: payload A with generation 1, or payload B with
 * generation 2. Anything else (a parse error, a digest pass on mixed
 * bytes, a blend) fails the sweep.
 */
TEST(CheckpointStore, CrashAtEveryInstallOpYieldsGenNOrN1)
{
    const auto a = bytesOf("payload-of-generation-one........");
    const auto b = bytesOf("PAYLOAD-OF-GENERATION-TWO-------!");

    // Upper bound for the sweep: ops in one uninterrupted install.
    std::uint64_t install_ops = 0;
    {
        durable::StableStore store;
        durable::CheckpointStore cs(store, "d");
        auto r1 = cs.install(1, a);
        ASSERT_TRUE(r1.ok());
        const std::uint64_t before = store.mutatingOps();
        ASSERT_TRUE(cs.install(2, b, r1.value().wal_file).ok());
        install_ops = store.mutatingOps() - before;
    }
    ASSERT_GE(install_ops, 5u);

    int gen1_survivals = 0, gen2_survivals = 0;
    for (std::uint64_t j = 0; j <= install_ops; ++j) {
        durable::StorePlan plan;
        plan.seed = 1000 + j;
        plan.torn_write_rate = 1.0;
        plan.bit_rot_rate = 0.5;
        durable::StableStore store(plan);
        durable::CheckpointStore cs(store, "d");
        auto r1 = cs.install(1, a);
        ASSERT_TRUE(r1.ok());

        store.crashAfterOps(j);
        (void)cs.install(2, b, r1.value().wal_file);
        if (!store.dead()) {
            // j exceeded the ops the install needed; nothing to
            // sweep past this point.
            EXPECT_EQ(j, install_ops);
            store.crash();
        }
        store.restart();

        durable::CheckpointStore recovered(store, "d");
        ASSERT_TRUE(recovered.hasState())
            << "crash after op " << j
            << " lost the installed generation entirely";
        auto loaded = recovered.loadLatest();
        ASSERT_TRUE(loaded.ok())
            << "crash after op " << j << ": "
            << loaded.status().toString();
        if (loaded.value().manifest.generation == 1) {
            EXPECT_EQ(loaded.value().payload, a)
                << "crash after op " << j << ": generation 1 blended";
            ++gen1_survivals;
        } else {
            EXPECT_EQ(loaded.value().manifest.generation, 2u);
            EXPECT_EQ(loaded.value().payload, b)
                << "crash after op " << j << ": generation 2 blended";
            ++gen2_survivals;
        }
    }
    // The sweep must actually cross the commit point: some crashes
    // land before it (gen 1 survives) and some after (gen 2).
    EXPECT_GT(gen1_survivals, 0);
    EXPECT_GT(gen2_survivals, 0);
}

} // namespace
