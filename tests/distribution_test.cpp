/** @file Unit tests for the weight-matrix distribution plan
 *  (Section III-A1, Fig 4, Eq 1). */
#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"
#include "vpps/distribution.hpp"

namespace {

using vpps::DistributionPlan;
using vpps::VppsOptions;

struct DistRig
{
    gpusim::Device device{gpusim::DeviceSpec{}, 64u << 20};
    graph::Model model;
    common::Rng rng{1};

    explicit DistRig(std::uint32_t rows, std::uint32_t cols,
                     int n_matrices = 2)
    {
        for (int i = 0; i < n_matrices; ++i)
            model.addWeightMatrix("W" + std::to_string(i), rows,
                                  cols);
        model.allocate(device, rng);
    }
};

TEST(Distribution, Eq1PartitionGeometry)
{
    DistRig rig(256, 256);
    VppsOptions opts;
    auto plan = DistributionPlan::tryBuild(
        rig.model, rig.device.spec(), opts, 2, 1, true);
    ASSERT_TRUE(plan.has_value());
    // Eq 1: P_size = TBSize(256) x rpw(2) x ceil(256/32)(8) = 4096.
    EXPECT_EQ(plan->partitionSizeElems(), 4096u);
    EXPECT_EQ(plan->regsPerThreadPerPartition(), 16);
    // Footnote 6: 255 addressable - 31 interp - 32 vector = 192.
    EXPECT_EQ(plan->cacheRegsPerThread(), 192);
    EXPECT_EQ(plan->partitionsPerCta(), 192 / 16);
}

TEST(Distribution, Footnote6MaxRpwExample)
{
    // "a model with row_max = 1024 and one CTA per SM can have a
    // maximum rpw of six": 6 x ceil(1024/32) = 192 regs exactly.
    DistRig rig(64, 1024, 1);
    VppsOptions opts;
    opts.ctas_per_sm = 1;
    EXPECT_TRUE(DistributionPlan::tryBuild(rig.model,
                                           rig.device.spec(), opts, 6,
                                           1, true)
                    .has_value());
    EXPECT_FALSE(DistributionPlan::tryBuild(rig.model,
                                            rig.device.spec(), opts, 7,
                                            1, true)
                     .has_value())
        << "rpw 7 needs 224 regs/partition > 192 budget";
}

TEST(Distribution, EveryRowCachedExactlyOnce)
{
    DistRig rig(300, 128, 3); // rows not divisible by rpw
    VppsOptions opts;
    auto plan = DistributionPlan::tryBuild(
        rig.model, rig.device.spec(), opts, 7, 2, true);
    ASSERT_TRUE(plan.has_value());
    for (graph::ParamId m : rig.model.weightMatrices()) {
        for (bool grad : {false, true}) {
            std::vector<int> covered(300, 0);
            for (int vpp = 0; vpp < plan->numVpps(); ++vpp)
                for (const auto& s : plan->slices(vpp, m, grad))
                    for (std::uint32_t r = s.first_row;
                         r < s.first_row + s.num_rows; ++r)
                        ++covered[r];
            for (int c : covered)
                EXPECT_EQ(c, 1) << "every row in exactly one warp";
        }
    }
}

TEST(Distribution, RoundRobinBalancesCtas)
{
    DistRig rig(512, 256, 4);
    VppsOptions opts;
    auto plan = DistributionPlan::tryBuild(
        rig.model, rig.device.spec(), opts, 2, 2, true);
    ASSERT_TRUE(plan.has_value());
    // Cached bytes per VPP must be near-uniform (Fig 4's goal).
    double min_b = 1e18, max_b = 0.0;
    for (int vpp = 0; vpp < plan->numVpps(); ++vpp) {
        min_b = std::min(min_b, plan->cachedWeightBytes(vpp));
        max_b = std::max(max_b, plan->cachedWeightBytes(vpp));
    }
    EXPECT_LE(max_b - min_b, 2.0 * 2 * 256 * 4)
        << "imbalance bounded by one rpw-row block";
}

TEST(Distribution, ConsecutiveBlocksSpreadAcrossCtas)
{
    DistRig rig(512, 256, 1);
    VppsOptions opts;
    auto plan = DistributionPlan::tryBuild(
        rig.model, rig.device.spec(), opts, 2, 2, true);
    ASSERT_TRUE(plan.has_value());
    // A 512-row matrix at rpw 2 has 256 blocks; with 160 VPPs the
    // matrix must engage every VPP (maximum matvec parallelism).
    EXPECT_EQ(plan->vppsOf(0, false).size(),
              static_cast<std::size_t>(plan->numVpps()));
}

TEST(Distribution, AutoPrefersTwoCtasWhenModelFits)
{
    DistRig small(256, 256, 4); // ~1 MB
    VppsOptions opts;
    auto plan = DistributionPlan::buildAuto(small.model,
                                            small.device.spec(), opts,
                                            2);
    EXPECT_EQ(plan.ctasPerSm(), 2);
    EXPECT_TRUE(plan.gradientsCached());
}

TEST(Distribution, AutoFallsBackToOneCtaUnderPressure)
{
    // ~14 matrices of 384x384 with gradients exceed the 2-CTA budget
    // but fit one CTA per SM -- the Fig 9 hidden-384 situation.
    gpusim::Device device(gpusim::DeviceSpec{}, 96u << 20);
    graph::Model model;
    for (int i = 0; i < 13; ++i)
        model.addWeightMatrix("W" + std::to_string(i), 384, 384);
    common::Rng rng(2);
    model.allocate(device, rng);
    VppsOptions opts;
    auto plan =
        DistributionPlan::buildAuto(model, device.spec(), opts, 2);
    EXPECT_EQ(plan.ctasPerSm(), 1);
    EXPECT_TRUE(plan.gradientsCached());
}

TEST(Distribution, AutoDropsGradientCachingWhenNecessary)
{
    // Weights that fit alone but not doubled: force the GEMM
    // strategy of Section III-C2.
    gpusim::Device device(gpusim::DeviceSpec{}, 96u << 20);
    graph::Model model;
    for (int i = 0; i < 7; ++i)
        model.addWeightMatrix("W" + std::to_string(i), 1024, 512);
    common::Rng rng(3);
    model.allocate(device, rng);
    VppsOptions opts;
    auto plan =
        DistributionPlan::buildAuto(model, device.spec(), opts, 2);
    EXPECT_FALSE(plan.gradientsCached());
}

TEST(Distribution, OversizedModelIsRecoverable)
{
    gpusim::Device device(gpusim::DeviceSpec{}, 128u << 20);
    graph::Model model;
    for (int i = 0; i < 24; ++i)
        model.addWeightMatrix("W" + std::to_string(i), 1024, 1024);
    common::Rng rng(4);
    model.allocate(device, rng);
    VppsOptions opts;
    auto plan =
        DistributionPlan::tryBuildAuto(model, device.spec(), opts, 1);
    ASSERT_FALSE(plan.ok());
    EXPECT_EQ(plan.status().code(), common::ErrorCode::OutOfMemory);
    EXPECT_NE(plan.status().toString().find("do not fit"),
              std::string::npos);
}

TEST(Distribution, ModelWithoutWeightMatricesIsRecoverable)
{
    gpusim::Device device(gpusim::DeviceSpec{}, 1u << 20);
    graph::Model model;
    model.addBias("b", 8);
    common::Rng rng(4);
    model.allocate(device, rng);
    VppsOptions opts;
    EXPECT_FALSE(
        DistributionPlan::tryBuild(model, device.spec(), opts, 1, 1,
                                   true)
            .has_value());
    auto plan =
        DistributionPlan::tryBuildAuto(model, device.spec(), opts, 1);
    ASSERT_FALSE(plan.ok());
    EXPECT_EQ(plan.status().code(),
              common::ErrorCode::InvalidArgument);
}

TEST(Distribution, MaxRpwShrinksWithWiderRows)
{
    DistRig narrow(64, 128, 1);
    DistRig wide(64, 1024, 1);
    VppsOptions opts;
    EXPECT_GT(
        DistributionPlan::maxRpw(narrow.model, narrow.device.spec(),
                                 opts),
        DistributionPlan::maxRpw(wide.model, wide.device.spec(),
                                 opts));
}

TEST(Distribution, GradientSlicesMirrorWeightRows)
{
    DistRig rig(128, 64, 2);
    VppsOptions opts;
    auto plan = DistributionPlan::tryBuild(
        rig.model, rig.device.spec(), opts, 4, 2, true);
    ASSERT_TRUE(plan.has_value());
    // Gradient copies occupy their own slots; total rows match.
    for (graph::ParamId m : rig.model.weightMatrices()) {
        std::uint32_t w_rows = 0, g_rows = 0;
        for (int vpp = 0; vpp < plan->numVpps(); ++vpp) {
            w_rows += plan->rowsOn(vpp, m, false);
            g_rows += plan->rowsOn(vpp, m, true);
        }
        EXPECT_EQ(w_rows, 128u);
        EXPECT_EQ(g_rows, 128u);
    }
    EXPECT_GT(plan->slotUtilization(), 0.0);
    EXPECT_LE(plan->slotUtilization(), 1.0);
    EXPECT_DOUBLE_EQ(plan->totalCachedBytes(),
                     2.0 * 2 * 128 * 64 * 4);
}

/** Parameterized sweep: plans stay valid across the rpw range. */
class RpwSweepTest : public testing::TestWithParam<int>
{
};

TEST_P(RpwSweepTest, PlanCoversAllRowsAtAnyRpw)
{
    DistRig rig(256, 256, 3);
    VppsOptions opts;
    auto plan = DistributionPlan::tryBuild(
        rig.model, rig.device.spec(), opts, GetParam(), 2, true);
    ASSERT_TRUE(plan.has_value());
    std::uint32_t rows = 0;
    for (int vpp = 0; vpp < plan->numVpps(); ++vpp)
        rows += plan->rowsOn(vpp, 0, false);
    EXPECT_EQ(rows, 256u);
    EXPECT_EQ(plan->rpw(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Rpw1To8, RpwSweepTest,
                         testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

} // namespace
