/**
 * @file
 * Direct unit tests of the VPP interpreter: hand-encoded scripts are
 * executed through ScriptExecutor and the resulting memory contents,
 * timings, and barrier behaviour are checked opcode by opcode --
 * independent of the script generator.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "common/rng.hpp"
#include "vpps/script_exec.hpp"

namespace {

using gpusim::DeviceMemory;

/** Fixture: a device, a 2-matrix model, and a compiled kernel. */
struct InterpRig
{
    gpusim::Device device{gpusim::DeviceSpec{}, 4u << 20};
    graph::Model model;
    graph::ParamId w;
    vpps::CompiledKernel kernel;
    graph::ComputationGraph cg;
    graph::NodeId loss_node;

    InterpRig()
    {
        w = model.addWeightMatrix("W", 8, 4);
        common::Rng rng(111);
        model.allocate(device, rng);
        vpps::VppsOptions opts;
        auto plan = vpps::DistributionPlan::buildAuto(
            model, device.spec(), opts, 2);
        const vpps::KernelSpecializer specializer(device.spec());
        kernel = specializer.specialize(model, plan);
        // A placeholder loss node so RunResult.loss has a source.
        loss_node = cg.addInput({0.0f});
        cg.node(loss_node).fwd =
            device.memory().allocate(1, gpusim::MemSpace::Activations);
    }

    /** Allocate a vector and fill it with the given values. */
    DeviceMemory::Offset
    vec(std::initializer_list<float> values)
    {
        auto off = device.memory().allocate(
            values.size(), gpusim::MemSpace::Activations);
        float* p = device.memory().data(off);
        std::size_t i = 0;
        for (float v : values)
            p[i++] = v;
        return off;
    }

    const float* at(DeviceMemory::Offset off)
    {
        return device.memory().data(off);
    }

    common::Result<vpps::RunResult>
    tryRun(vpps::GeneratedBatch& batch)
    {
        batch.loss_node = loss_node;
        batch.script.seal();
        vpps::ScriptExecutor executor(device);
        return executor.run(kernel, batch, model, cg);
    }

    vpps::RunResult
    run(vpps::GeneratedBatch& batch)
    {
        return tryRun(batch).value();
    }

    vpps::GeneratedBatch
    fresh()
    {
        return vpps::GeneratedBatch(kernel.plan.numVpps());
    }
};

TEST(Interpreter, CopyAndAccum)
{
    InterpRig rig;
    const auto src = rig.vec({1, 2, 3});
    const auto dst = rig.vec({0, 0, 0});
    const auto acc = rig.vec({10, 20, 30});
    auto batch = rig.fresh();
    batch.script.emit(0, vpps::Opcode::Copy, 3, {dst, src});
    batch.script.emit(1, vpps::Opcode::Accum, 3, {acc, src});
    rig.run(batch);
    EXPECT_FLOAT_EQ(rig.at(dst)[0], 1.0f);
    EXPECT_FLOAT_EQ(rig.at(dst)[2], 3.0f);
    EXPECT_FLOAT_EQ(rig.at(acc)[0], 11.0f);
    EXPECT_FLOAT_EQ(rig.at(acc)[2], 33.0f);
}

TEST(Interpreter, AddsAndMuls)
{
    InterpRig rig;
    const auto a = rig.vec({1, 2});
    const auto b = rig.vec({10, 20});
    const auto c = rig.vec({100, 200});
    const auto sum2 = rig.vec({0, 0});
    const auto sum3 = rig.vec({0, 0});
    const auto prod = rig.vec({0, 0});
    const auto fma = rig.vec({5, 5});
    auto batch = rig.fresh();
    batch.script.emit(0, vpps::Opcode::Add2, 2, {sum2, a, b});
    batch.script.emit(0, vpps::Opcode::Add3, 2, {sum3, a, b, c});
    batch.script.emit(0, vpps::Opcode::Mul, 2, {prod, a, b});
    batch.script.emit(0, vpps::Opcode::MulAccum, 2, {fma, a, b});
    rig.run(batch);
    EXPECT_FLOAT_EQ(rig.at(sum2)[1], 22.0f);
    EXPECT_FLOAT_EQ(rig.at(sum3)[1], 222.0f);
    EXPECT_FLOAT_EQ(rig.at(prod)[1], 40.0f);
    EXPECT_FLOAT_EQ(rig.at(fma)[0], 15.0f);
}

TEST(Interpreter, ActivationsForwardAndBackward)
{
    InterpRig rig;
    const auto in = rig.vec({0.5f, -0.5f});
    const auto y_tanh = rig.vec({0, 0});
    const auto y_sig = rig.vec({0, 0});
    const auto y_relu = rig.vec({0, 0});
    const auto dout = rig.vec({1, 1});
    const auto din = rig.vec({0, 0});
    auto batch = rig.fresh();
    batch.script.emit(0, vpps::Opcode::Tanh, 2, {y_tanh, in});
    batch.script.emit(0, vpps::Opcode::Sigmoid, 2, {y_sig, in});
    batch.script.emit(0, vpps::Opcode::Relu, 2, {y_relu, in});
    batch.script.emit(0, vpps::Opcode::TanhBack, 2,
                      {din, y_tanh, dout});
    rig.run(batch);
    EXPECT_NEAR(rig.at(y_tanh)[0], std::tanh(0.5f), 1e-6);
    EXPECT_NEAR(rig.at(y_sig)[1], 1.0f / (1.0f + std::exp(0.5f)),
                1e-6);
    EXPECT_FLOAT_EQ(rig.at(y_relu)[0], 0.5f);
    EXPECT_FLOAT_EQ(rig.at(y_relu)[1], 0.0f);
    const float t = std::tanh(0.5f);
    EXPECT_NEAR(rig.at(din)[0], 1.0f - t * t, 1e-6);
}

TEST(Interpreter, ScaleUsesOperandFloatBits)
{
    InterpRig rig;
    const auto in = rig.vec({2, 4});
    const auto out = rig.vec({0, 0});
    const float factor = -1.5f;
    std::uint32_t bits;
    std::memcpy(&bits, &factor, sizeof(bits));
    auto batch = rig.fresh();
    batch.script.emit(0, vpps::Opcode::Scale, 2, {out, in, bits});
    rig.run(batch);
    EXPECT_FLOAT_EQ(rig.at(out)[0], -3.0f);
    EXPECT_FLOAT_EQ(rig.at(out)[1], -6.0f);
}

TEST(Interpreter, MatVecUsesPerVppRowSlices)
{
    InterpRig rig;
    // W is 8x4; fill it with a known pattern: W[r][c] = r + 1.
    float* wdata = rig.device.memory().data(rig.model.param(rig.w).value);
    for (int r = 0; r < 8; ++r)
        for (int c = 0; c < 4; ++c)
            wdata[r * 4 + c] = static_cast<float>(r + 1);
    const auto x = rig.vec({1, 1, 1, 1});
    const auto y = rig.vec({0, 0, 0, 0, 0, 0, 0, 0});
    auto batch = rig.fresh();
    // Emit the matvec on every VPP holding rows, as the generator
    // would; rows not held by a VPP must be left for the others.
    for (int vpp : rig.kernel.plan.vppsOf(rig.w, false))
        batch.script.emit(vpp, vpps::Opcode::MatVec, rig.w, {x, y});
    rig.run(batch);
    for (int r = 0; r < 8; ++r)
        EXPECT_FLOAT_EQ(rig.at(y)[r], 4.0f * (r + 1))
            << "row " << r;
}

TEST(Interpreter, SignalWaitOrdersCrossVppDataflow)
{
    InterpRig rig;
    const auto a = rig.vec({7, 7});
    const auto b = rig.vec({0, 0});
    const auto c = rig.vec({0, 0});
    auto batch = rig.fresh();
    // VPP 5 produces b from a, signals; VPP 9 waits, consumes b.
    batch.script.emit(5, vpps::Opcode::Copy, 2, {b, a});
    batch.script.emit(5, vpps::Opcode::Signal, 0, {});
    batch.script.emit(9, vpps::Opcode::Wait, 0, {});
    batch.script.emit(9, vpps::Opcode::Add2, 2, {c, b, b});
    batch.script.setExpectedSignals(0, 1);
    rig.run(batch);
    EXPECT_FLOAT_EQ(rig.at(c)[0], 14.0f);
}

TEST(Interpreter, WaitingVppResumesAfterSignaler)
{
    InterpRig rig;
    const auto big_src = rig.device.memory().allocate(
        4096, gpusim::MemSpace::Activations);
    const auto big_dst = rig.device.memory().allocate(
        4096, gpusim::MemSpace::Activations);
    auto batch = rig.fresh();
    // VPP 0 does a slow copy then signals; VPP 1 only waits.
    batch.script.emit(0, vpps::Opcode::Copy, 4096,
                      {big_dst, big_src});
    batch.script.emit(0, vpps::Opcode::Signal, 0, {});
    batch.script.emit(1, vpps::Opcode::Wait, 0, {});
    batch.script.setExpectedSignals(0, 1);
    const auto result = rig.run(batch);
    // The makespan includes VPP 1's wait past VPP 0's work.
    EXPECT_GT(result.makespan_us,
              rig.device.spec().barrier_wait_us);
}

TEST(Interpreter, UpdateVecAppliesSgdInKernel)
{
    InterpRig rig;
    rig.model.learning_rate = 0.5f;
    rig.model.weight_decay = 0.0f;
    const auto p = rig.vec({1.0f, 2.0f});
    const auto g = rig.vec({0.2f, 0.4f});
    auto batch = rig.fresh();
    batch.script.emit(3, vpps::Opcode::UpdateVec, 2, {p, g});
    rig.run(batch);
    EXPECT_FLOAT_EQ(rig.at(p)[0], 0.9f);
    EXPECT_FLOAT_EQ(rig.at(p)[1], 1.8f);
    EXPECT_FLOAT_EQ(rig.at(g)[0], 0.0f) << "gradient cleared";
}

TEST(Interpreter, PickNlsRoundTrip)
{
    InterpRig rig;
    const auto logits = rig.vec({0.0f, 1.0f, 0.0f});
    const auto probs = rig.vec({0, 0, 0});
    const auto loss = rig.vec({0});
    auto batch = rig.fresh();
    batch.script.emit(0, vpps::Opcode::PickNLS, 3,
                      {logits, probs, loss, 1});
    rig.run(batch);
    EXPECT_GT(rig.at(probs)[1], rig.at(probs)[0]);
    EXPECT_NEAR(rig.at(probs)[0] + rig.at(probs)[1] +
                    rig.at(probs)[2],
                1.0f, 1e-5);
    EXPECT_NEAR(rig.at(loss)[0], -std::log(rig.at(probs)[1]), 1e-5);
}

TEST(Interpreter, UnreadyWaitIsAStructuredErrorNotAHang)
{
    // A Wait on a barrier that can never be satisfied (the script
    // emits zero of the two declared signals) used to panic the
    // process; decode-time validation now rejects it with full
    // diagnostics and the interpreter never runs.
    InterpRig rig;
    auto batch = rig.fresh();
    batch.script.emit(0, vpps::Opcode::Wait, 0, {});
    batch.script.setExpectedSignals(0, 2); // never satisfied
    const auto result = rig.tryRun(batch);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(),
              common::ErrorCode::MalformedScript);
    EXPECT_EQ(result.error().barrier, 0);
    EXPECT_NE(result.error().message.find("expects 2 signal"),
              std::string::npos)
        << result.error().toString();
}

TEST(Interpreter, InstructionCountAndTimingAreReported)
{
    InterpRig rig;
    const auto a = rig.vec({1, 2});
    const auto b = rig.vec({0, 0});
    auto batch = rig.fresh();
    batch.script.emit(0, vpps::Opcode::Copy, 2, {b, a});
    batch.script.emit(7, vpps::Opcode::Copy, 2, {b, a});
    const auto result = rig.run(batch);
    EXPECT_EQ(result.instructions, 2u);
    EXPECT_GT(result.kernel_us, rig.device.spec().kernel_launch_us);
    EXPECT_GE(result.makespan_us, result.mean_vpp_us);
}

} // namespace
