/** @file Unit tests for the six benchmark applications. */
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "data/ner_corpus.hpp"
#include "data/treebank.hpp"
#include "data/vocab.hpp"
#include "exec/naive_executor.hpp"
#include "graph/level_sort.hpp"
#include "models/bilstm_char_tagger.hpp"
#include "models/bilstm_tagger.hpp"
#include "models/lstm.hpp"
#include "models/rvnn.hpp"
#include "models/td_lstm.hpp"
#include "models/td_rnn.hpp"
#include "models/tree_lstm.hpp"
#include "train/harness.hpp"

namespace {

struct ModelRig
{
    gpusim::Device device{gpusim::DeviceSpec{}, 64u << 20};
    common::Rng data_rng{41};
    data::Vocab vocab{500, 10000};
    data::Treebank bank{vocab, 12, data_rng, 8.0, 4, 12};
    data::NerCorpus ner{vocab, 12, data_rng, 8.0, 4, 12};
    common::Rng param_rng{42};

    std::unique_ptr<models::BenchmarkModel>
    make(const std::string& app)
    {
        if (app == "Tree-LSTM")
            return std::make_unique<models::TreeLstmModel>(
                bank, vocab, 16, 32, device, param_rng);
        if (app == "BiLSTM")
            return std::make_unique<models::BiLstmTagger>(
                ner, vocab, 16, 24, 16, device, param_rng);
        if (app == "BiLSTMwChar")
            return std::make_unique<models::BiLstmCharTagger>(
                ner, vocab, 16, 24, 16, 8, device, param_rng);
        if (app == "TD-RNN")
            return std::make_unique<models::TdRnnModel>(
                bank, vocab, 32, device, param_rng);
        if (app == "TD-LSTM")
            return std::make_unique<models::TdLstmModel>(
                bank, vocab, 32, device, param_rng);
        return std::make_unique<models::RvnnModel>(
            bank, vocab, 32, device, param_rng);
    }
};

class AllModelsTest : public testing::TestWithParam<const char*>
{
};

TEST_P(AllModelsTest, BuildsTrainableGraphsForEveryInput)
{
    ModelRig rig;
    auto model = rig.make(GetParam());
    EXPECT_GT(model->datasetSize(), 0u);
    EXPECT_FALSE(model->model().weightMatrices().empty());

    exec::NaiveExecutor executor(rig.device, gpusim::HostSpec{});
    for (std::size_t i = 0; i < 4; ++i) {
        graph::ComputationGraph cg;
        auto loss = model->buildLoss(cg, i);
        EXPECT_TRUE(loss.shape().isScalar());
        const float value =
            executor.trainBatch(model->model(), cg, loss);
        EXPECT_TRUE(std::isfinite(value));
        EXPECT_GT(value, 0.0f) << GetParam() << " input " << i;
    }
}

TEST_P(AllModelsTest, GraphShapeVariesAcrossInputs)
{
    ModelRig rig;
    auto model = rig.make(GetParam());
    std::set<std::size_t> node_counts;
    for (std::size_t i = 0; i < 8; ++i) {
        graph::ComputationGraph cg;
        model->buildLoss(cg, i);
        node_counts.insert(cg.size());
    }
    EXPECT_GT(node_counts.size(), 2u)
        << "a dynamic net must induce different graphs per input";
}

INSTANTIATE_TEST_SUITE_P(SixApps, AllModelsTest,
                         testing::Values("Tree-LSTM", "BiLSTM",
                                         "BiLSTMwChar", "TD-RNN",
                                         "TD-LSTM", "RvNN"),
                         [](const auto& info) {
                             std::string n = info.param;
                             for (auto& c : n)
                                 if (c == '-')
                                     c = '_';
                             return n;
                         });

TEST(LstmBuilder, GateDimensionsAndStateFlow)
{
    gpusim::Device device(gpusim::DeviceSpec{}, 8u << 20);
    graph::Model model;
    models::LstmBuilder lstm(model, "test", 8, 16);
    common::Rng rng(43);
    model.allocate(device, rng);
    EXPECT_EQ(lstm.hiddenDim(), 16u);
    // Wx is 4H x I, Wh is 4H x H.
    EXPECT_EQ(model.param(0).shape, tensor::Shape(64, 8));
    EXPECT_EQ(model.param(1).shape, tensor::Shape(64, 16));
    EXPECT_EQ(model.param(2).shape, tensor::Shape(64));

    graph::ComputationGraph cg;
    auto s0 = lstm.start(cg);
    EXPECT_EQ(s0.h.shape(), tensor::Shape(16));
    auto x = graph::input(cg, std::vector<float>(8, 0.5f));
    auto s1 = lstm.next(model, s0, x);
    EXPECT_EQ(s1.h.shape(), tensor::Shape(16));
    EXPECT_EQ(s1.c.shape(), tensor::Shape(16));
}

TEST(TreeLstm, GraphDepthTracksParseDepth)
{
    ModelRig rig;
    auto model = rig.make("Tree-LSTM");
    std::size_t deepest_tree = 0, deepest_graph = 0;
    std::size_t shallowest_tree = 1000, shallowest_graph = 100000;
    for (std::size_t i = 0; i < 8; ++i) {
        graph::ComputationGraph cg;
        model->buildLoss(cg, i);
        const auto levels = graph::computeLevels(cg);
        const std::size_t d = rig.bank.sentence(i).depth();
        if (d > deepest_tree) {
            deepest_tree = d;
            deepest_graph = levels.size();
        }
        if (d < shallowest_tree) {
            shallowest_tree = d;
            shallowest_graph = levels.size();
        }
    }
    EXPECT_GT(deepest_graph, shallowest_graph)
        << "deeper parses must induce deeper graphs";
}

TEST(BiLstmChar, RareWordsUseCharacterPath)
{
    ModelRig rig;
    // Find a sentence containing at least one rare word; there is
    // almost surely one given Zipf frequencies.
    auto tagger = std::make_unique<models::BiLstmCharTagger>(
        rig.ner, rig.vocab, 16, 24, 16, 8, rig.device, rig.param_rng);
    bool found_rare = false;
    for (std::size_t i = 0; i < rig.ner.size() && !found_rare; ++i)
        for (auto w : rig.ner.sentence(i).words)
            found_rare |= rig.vocab.isRare(w);
    ASSERT_TRUE(found_rare) << "corpus must exercise the char path";

    // The char model must build strictly larger graphs than the
    // plain tagger on the same data (extra char LSTMs).
    common::Rng prng2(42);
    gpusim::Device device2(gpusim::DeviceSpec{}, 64u << 20);
    models::BiLstmTagger plain(rig.ner, rig.vocab, 16, 24, 16,
                               device2, prng2);
    std::size_t char_nodes = 0, plain_nodes = 0;
    for (std::size_t i = 0; i < rig.ner.size(); ++i) {
        graph::ComputationGraph a, b;
        tagger->buildLoss(a, i);
        plain.buildLoss(b, i);
        char_nodes += a.size();
        plain_nodes += b.size();
    }
    EXPECT_GT(char_nodes, plain_nodes);
}

TEST(TdRnn, PyramidReducesToSingleVector)
{
    ModelRig rig;
    auto model = rig.make("TD-RNN");
    // Node count grows quadratically with sentence length: n leaves
    // produce n(n-1)/2 compositions.
    graph::ComputationGraph cg;
    model->buildLoss(cg, 0);
    const std::size_t len = rig.bank.sentence(0).length();
    const std::size_t compositions = len * (len - 1) / 2;
    EXPECT_GE(cg.size(), compositions * 3);
}

TEST(RvNN, UntiedLeafAndInternalWeights)
{
    ModelRig rig;
    gpusim::Device device(gpusim::DeviceSpec{}, 64u << 20);
    common::Rng prng(44);
    models::RvnnModel rvnn(rig.bank, rig.vocab, 32, device, prng);
    const auto mats = rvnn.model().weightMatrices();
    // W_leaf (H x H), W_int (H x 2H), W_s: three distinct matrices.
    ASSERT_EQ(mats.size(), 3u);
    EXPECT_EQ(rvnn.model().param(mats[0]).shape,
              tensor::Shape(32, 32));
    EXPECT_EQ(rvnn.model().param(mats[1]).shape,
              tensor::Shape(32, 64));
}

} // namespace
