/**
 * @file
 * Fuzz and regression suite for the checkpoint wire format. The
 * fleet replicates parameters between replicas through serialized
 * checkpoint blobs, so a corrupted or truncated blob must never
 * crash, hang, or silently restore garbage: every malformed input
 * has to come back as a structured InvalidArgument Status. Mirrors
 * the decoder_fuzz_test pattern: seeded random fuzzing plus a
 * promoted-regression list of inputs that once mattered.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "data/treebank.hpp"
#include "data/vocab.hpp"
#include "models/rvnn.hpp"
#include "train/checkpoint_io.hpp"
#include "train/harness.hpp"

namespace {

train::TrainCheckpoint
sampleCheckpoint(std::size_t params)
{
    train::TrainCheckpoint ckpt;
    ckpt.next_input = 17;
    ckpt.learning_rate = 0.25f;
    ckpt.weight_decay = 0.0625f;
    common::Rng rng(99);
    ckpt.params.reserve(params);
    for (std::size_t i = 0; i < params; ++i)
        ckpt.params.push_back(
            static_cast<float>(rng.nextGaussian()));
    return ckpt;
}

void
expectMalformed(const std::vector<std::uint8_t>& blob,
                const std::string& what)
{
    auto r = train::deserializeCheckpoint(blob);
    ASSERT_FALSE(r.ok()) << what << ": accepted a malformed blob";
    EXPECT_EQ(r.status().code(), common::ErrorCode::InvalidArgument)
        << what;
    EXPECT_NE(r.status().toString().find("checkpoint blob"),
              std::string::npos)
        << what << ": error must name the decoder";
}

TEST(CheckpointBlob, RoundTripsBitwise)
{
    const auto ckpt = sampleCheckpoint(1000);
    const auto blob = train::serializeCheckpoint(ckpt);
    auto r = train::deserializeCheckpoint(blob);
    ASSERT_TRUE(r.ok()) << r.status().toString();
    const auto& out = r.value();
    EXPECT_EQ(out.next_input, ckpt.next_input);
    EXPECT_EQ(std::memcmp(&out.learning_rate, &ckpt.learning_rate,
                          sizeof(float)),
              0);
    EXPECT_EQ(std::memcmp(&out.weight_decay, &ckpt.weight_decay,
                          sizeof(float)),
              0);
    ASSERT_EQ(out.params.size(), ckpt.params.size());
    EXPECT_EQ(std::memcmp(out.params.data(), ckpt.params.data(),
                          ckpt.params.size() * sizeof(float)),
              0)
        << "parameter payload must survive bitwise";
}

TEST(CheckpointBlob, EmptyParamsRoundTrip)
{
    const auto blob =
        train::serializeCheckpoint(sampleCheckpoint(0));
    auto r = train::deserializeCheckpoint(blob);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.value().params.empty());
}

TEST(CheckpointBlob, EveryTruncationIsRejected)
{
    const auto blob = train::serializeCheckpoint(sampleCheckpoint(8));
    for (std::size_t len = 0; len < blob.size(); ++len) {
        std::vector<std::uint8_t> cut(blob.begin(),
                                      blob.begin() + len);
        expectMalformed(cut,
                        "truncated to " + std::to_string(len) +
                            " of " + std::to_string(blob.size()));
    }
}

TEST(CheckpointBlob, EverySingleBitFlipIsRejected)
{
    // The trailing digest covers the header and payload, and a flip
    // inside the digest itself breaks the stored value: no single-bit
    // corruption anywhere in the blob may survive.
    const auto blob = train::serializeCheckpoint(sampleCheckpoint(4));
    for (std::size_t byte = 0; byte < blob.size(); ++byte) {
        for (int bit = 0; bit < 8; ++bit) {
            auto mutant = blob;
            mutant[byte] ^= static_cast<std::uint8_t>(1u << bit);
            expectMalformed(mutant, "bit " + std::to_string(bit) +
                                        " of byte " +
                                        std::to_string(byte));
        }
    }
}

TEST(CheckpointBlob, PromotedRegressions)
{
    // Inputs that target one validation rule each; every case must
    // fail with a message naming the offending field.
    const auto good = train::serializeCheckpoint(sampleCheckpoint(4));

    auto mutate = [&](std::size_t off, std::uint8_t v) {
        auto m = good;
        m[off] = v;
        return m;
    };

    {
        auto r = train::deserializeCheckpoint(mutate(0, 'X'));
        ASSERT_FALSE(r.ok());
        EXPECT_NE(r.status().toString().find("magic"),
                  std::string::npos);
    }
    {
        auto r = train::deserializeCheckpoint(mutate(4, 0xFF));
        ASSERT_FALSE(r.ok());
        EXPECT_NE(r.status().toString().find("version"),
                  std::string::npos);
    }
    {
        // Param count inflated to a value whose byte length would
        // overflow 64-bit arithmetic: the guarded count check must
        // reject it before any allocation.
        auto m = good;
        for (std::size_t i = 24; i < 32; ++i)
            m[i] = 0xFF;
        auto r = train::deserializeCheckpoint(m);
        ASSERT_FALSE(r.ok());
        EXPECT_NE(r.status().toString().find("count"),
                  std::string::npos);
    }
    {
        // Clean payload corruption: digest must catch it.
        auto m = good;
        m[32] ^= 0x01;
        auto r = train::deserializeCheckpoint(m);
        ASSERT_FALSE(r.ok());
        EXPECT_NE(r.status().toString().find("digest"),
                  std::string::npos);
    }
    {
        expectMalformed({}, "empty blob");
    }
    {
        std::vector<std::uint8_t> just_magic = {'V', 'P', 'C', 'K'};
        expectMalformed(just_magic, "magic only");
    }
}

TEST(CheckpointBlob, SeededRandomFuzzNeverCrashes)
{
    common::Rng rng(1234);
    for (int iter = 0; iter < 2000; ++iter) {
        const std::size_t len = rng.nextBelow(256);
        std::vector<std::uint8_t> blob(len);
        for (auto& b : blob)
            b = static_cast<std::uint8_t>(rng.nextBelow(256));
        // Random bytes may by cosmic luck be valid; the requirement
        // is only that the decoder never crashes and every rejection
        // is structured.
        auto r = train::deserializeCheckpoint(blob);
        if (!r.ok())
            EXPECT_EQ(r.status().code(),
                      common::ErrorCode::InvalidArgument);
    }
}

TEST(CheckpointBlob, RestoreBlobRejectsCorruptionAndKeepsModel)
{
    gpusim::Device device{gpusim::DeviceSpec{}, 32u << 20};
    common::Rng data_rng{51};
    data::Vocab vocab{300};
    data::Treebank bank{vocab, 10, data_rng, 8.0, 4, 12};
    common::Rng param_rng{52};
    models::RvnnModel model{bank, vocab, 32, device, param_rng};

    const auto before =
        train::captureCheckpoint(model.model(), device, 3);
    const auto blob = train::serializeCheckpoint(before);

    // A corrupted blob must leave the model bitwise untouched.
    auto bad = blob;
    bad[blob.size() / 2] ^= 0x10;
    auto st = train::restoreCheckpointBlob(bad, model.model(), device);
    EXPECT_FALSE(st.ok());
    const auto after =
        train::captureCheckpoint(model.model(), device, 3);
    ASSERT_EQ(after.params.size(), before.params.size());
    EXPECT_EQ(std::memcmp(after.params.data(), before.params.data(),
                          before.params.size() * sizeof(float)),
              0)
        << "failed restore must not partially write parameters";

    // The intact blob restores bitwise.
    st = train::restoreCheckpointBlob(blob, model.model(), device);
    EXPECT_TRUE(st.ok()) << st.toString();
    const auto restored =
        train::captureCheckpoint(model.model(), device, 3);
    EXPECT_EQ(std::memcmp(restored.params.data(),
                          before.params.data(),
                          before.params.size() * sizeof(float)),
              0);
}

} // namespace
