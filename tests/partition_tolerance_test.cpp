/**
 * @file
 * Acceptance suite for network fault domains and partition-tolerant
 * fleet serving (DESIGN.md section 4.12). The headline invariant,
 * proved by an explorer-style sweep over link-down instants: any
 * single link failure/partition of the serving fabric loses no
 * admitted High-class request, post-heal completions are bitwise
 * identical to the fault-free run (the epoch fence makes a healed
 * partition unable to double-complete), and dispatch accounting
 * reconciles by construction -- at 1 and at 8 host interpreter
 * threads. Rack-locality-aware promotion and the golden net-lane
 * trace ride on the same machinery.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "data/treebank.hpp"
#include "data/vocab.hpp"
#include "models/tree_lstm.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/arrival.hpp"
#include "serve/fleet.hpp"
#include "serve/net.hpp"
#include "serve/net_explorer.hpp"
#include "vpps/handle.hpp"

namespace {

// ---------------------------------------------------------------
// Explorer sweep: the headline invariant
// ---------------------------------------------------------------

serve::NetExplorerConfig
sweepConfig(int host_threads, std::size_t max_points)
{
    serve::NetExplorerConfig cfg;
    cfg.host_threads = host_threads;
    cfg.max_points = max_points;
    return cfg;
}

TEST(PartitionTolerance, SweepLosesNoHighAndStaysBitwise)
{
    const serve::NetExploreReport rep =
        serve::exploreLinkDownPoints(sweepConfig(1, 6));
    ASSERT_GT(rep.baseline_completed, 0u);
    ASSERT_GE(rep.points_tested.size(), 2u);
    std::string why;
    for (const auto& f : rep.failures)
        for (const auto& v : f.violations)
            why += v + "\n";
    EXPECT_TRUE(rep.passed()) << why;
}

TEST(PartitionTolerance, SweepIsThreadInvariant)
{
    // The whole sweep -- baseline end time, completion count, tested
    // instants, verdicts -- must be a pure function of the scenario
    // seeds, independent of the host interpreter thread count.
    const serve::NetExploreReport r1 =
        serve::exploreLinkDownPoints(sweepConfig(1, 4));
    const serve::NetExploreReport r8 =
        serve::exploreLinkDownPoints(sweepConfig(8, 4));
    EXPECT_EQ(r1.baseline_end_us, r8.baseline_end_us);
    EXPECT_EQ(r1.baseline_completed, r8.baseline_completed);
    EXPECT_EQ(r1.points_tested, r8.points_tested);
    EXPECT_TRUE(r1.passed());
    EXPECT_TRUE(r8.passed());
}

TEST(PartitionTolerance, MidTracePartitionFencesAndHeals)
{
    serve::NetExplorerConfig cfg = sweepConfig(1, 1);
    // A longer window so the partition catches dispatches in flight,
    // not just an idle gap.
    cfg.down_for_us = 8'000.0;
    const serve::PartitionMeasurement m =
        serve::measurePartition(cfg, 0.35);
    std::string why;
    for (const auto& v : m.violations)
        why += v + "\n";
    EXPECT_TRUE(m.violations.empty()) << why;
    EXPECT_GE(m.link_downs, 1u) << "the window never engaged";
    // The partition was visible on the wire -- blocked sends, router
    // skips, or a fence -- yet goodput survived and nothing was lost.
    EXPECT_GT(m.sends_blocked + m.unreachable_skips + m.fenced +
                  m.timeouts,
              0u);
    EXPECT_GT(m.faulted_goodput, 0.0);
    // Every fence that dropped a stale reply was booked both ways.
    EXPECT_EQ(m.fenced, m.timeouts);
    EXPECT_GT(m.baseline_end_us, 0u);
}

TEST(PartitionTolerance, SeededLossIsDeterministic)
{
    // Per-link message loss draws from the dedicated link stream, so
    // two identical lossy runs agree in every field -- counters,
    // retransmits, end time -- and still lose nothing.
    serve::NetExplorerConfig cfg = sweepConfig(1, 1);
    cfg.loss_rate = 0.10;
    const serve::PartitionMeasurement a =
        serve::measurePartition(cfg, 0.5);
    const serve::PartitionMeasurement b =
        serve::measurePartition(cfg, 0.5);
    EXPECT_TRUE(a.violations.empty());
    EXPECT_TRUE(b.violations.empty());
    EXPECT_GT(a.retransmits + a.timeouts, 0u)
        << "loss at 10% never engaged";
    EXPECT_EQ(a.retransmits, b.retransmits);
    EXPECT_EQ(a.timeouts, b.timeouts);
    EXPECT_EQ(a.fenced, b.fenced);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_DOUBLE_EQ(a.faulted_end_us, b.faulted_end_us);
}

TEST(PartitionTolerance, SingleLinkDownPointChecksClean)
{
    // The one-point entry the sweep is built from: a window opening
    // at t = 0 (the whole warm-up partitioned) still violates
    // nothing.
    const std::vector<std::string> violations =
        serve::checkLinkDownPoint(sweepConfig(1, 1), 0);
    std::string why;
    for (const auto& v : violations)
        why += v + "\n";
    EXPECT_TRUE(violations.empty()) << why;
}

TEST(PartitionTolerance, TransportEdgeCases)
{
    // The transport corners the serving scenarios never reach:
    // multi-hop routes, unreachable pairs, reflexive queries, total
    // loss, and empty ships.
    serve::NetworkModel off;
    EXPECT_FALSE(off.enabled());

    // Device 3 is isolated; 0 reaches 2 only through the route; the
    // 1-2 hop loses every message (loss_ppm at its maximum).
    auto topo = gpusim::Topology::parse(
        "devices 4\n"
        "link 0 1 nvlink\n"
        "link 1 2 pcie\n"
        "route 0 2 via 1\n"
        "linkfault 1 2 loss_ppm=1000000\n");
    ASSERT_TRUE(topo.ok()) << topo.status().toString();
    serve::NetConfig nc;
    nc.topology = std::move(topo).value();
    nc.faults.link_faults = nc.topology.linkFaults();
    nc.faults.link_seed = 3;
    nc.max_retransmits = 6;
    nc.max_chunk_retries = 3;
    serve::NetworkModel net(nc, nullptr, nullptr);
    ASSERT_TRUE(net.enabled());

    // Reflexive and out-of-range pairs are not paths.
    EXPECT_FALSE(net.pathUp(1, 1, 0.0));
    EXPECT_FALSE(net.pathUp(7, 0, 0.0));
    const double inf = std::numeric_limits<double>::infinity();
    EXPECT_EQ(net.pathUpAtUs(0, 3, 0.0), inf);

    // Candidate scoring is a pure topology property: 0 for self,
    // +inf when unreachable, hop-additive over the route -- and it
    // equals the fault-free wire time of the same transfer.
    EXPECT_EQ(net.scoreUs(2, 2, 4096), 0.0);
    EXPECT_EQ(net.scoreUs(0, 3, 4096), inf);
    const double via = net.scoreUs(0, 2, 4096);
    EXPECT_GT(via, 0.0);
    EXPECT_DOUBLE_EQ(via, net.scoreUs(0, 1, 4096) +
                              net.scoreUs(1, 2, 4096));
    EXPECT_DOUBLE_EQ(via, net.transferUs(0, 2, 4096, 0.0));

    // Total loss on the 1-2 hop: sends never deliver, the reliable
    // ladder exhausts its retransmits, and a chunked ship abandons
    // -- all without a panic, all booked.
    const auto out = net.send(0, 2, 64, 0.0, "dispatch");
    EXPECT_FALSE(out.delivered);
    EXPECT_FALSE(out.blocked);
    EXPECT_EQ(net.reliableDeliveryAtUs(0, 2, 64, 0.0), inf);
    EXPECT_EQ(net.reliableDeliveryAtUs(0, 3, 64, 0.0), inf);
    const auto ship = net.ship(0, 2, 4096, 0.0);
    EXPECT_FALSE(ship.ok);
    EXPECT_EQ(net.stats().ships_failed, 1u);
    EXPECT_GT(net.stats().messages_lost, 0u);
    EXPECT_GT(net.stats().retransmits, 0u);

    // A zero-byte ship is complete before it starts.
    const auto empty = net.ship(0, 1, 0, 5.0);
    EXPECT_TRUE(empty.ok);
    EXPECT_EQ(empty.done_at_us, 5.0);
    EXPECT_EQ(empty.chunks, 0u);

    // The 4-rank broadcast tree prices a (2,3) hop; with device 3
    // isolated that is a structured error, not a panic.
    auto bc = net.paramBroadcastUs(1 << 20, 0.0);
    EXPECT_FALSE(bc.ok());
    EXPECT_EQ(bc.status().code(), common::ErrorCode::Unavailable);
}

// ---------------------------------------------------------------
// Rack-locality-aware promotion
// ---------------------------------------------------------------

TEST(PartitionTolerance, RackLocalPromotionShipsCheaper)
{
    serve::NetExplorerConfig cfg = sweepConfig(1, 1);
    const serve::PromotionMeasurement local =
        serve::measurePromotion(cfg, /*rack_local=*/true);
    const serve::PromotionMeasurement cross =
        serve::measurePromotion(cfg, /*rack_local=*/false);
    std::string why;
    for (const auto& v : local.violations)
        why += "local: " + v + "\n";
    for (const auto& v : cross.violations)
        why += "cross: " + v + "\n";
    EXPECT_TRUE(local.violations.empty() && cross.violations.empty())
        << why;
    ASSERT_TRUE(local.joined);
    ASSERT_TRUE(cross.joined);
    // Same parameter blob either way...
    ASSERT_GT(local.ship_bytes, 0u);
    EXPECT_EQ(local.ship_bytes, cross.ship_bytes);
    EXPECT_EQ(local.ship_chunks, cross.ship_chunks);
    // ...but the same-rack nvlink ship beats the cross-rack nic ship
    // outright -- the cost difference rack-aware failover exists for.
    EXPECT_LT(local.ship_us, cross.ship_us)
        << "rack-local promotion must be cheaper on the wire";
}

// ---------------------------------------------------------------
// Golden net-lane trace
// ---------------------------------------------------------------

vpps::VppsOptions
netOpts(int host_threads)
{
    vpps::VppsOptions opts;
    opts.rpw = 2;
    opts.async = false;
    opts.degrade_on_failure = false;
    opts.host_threads = host_threads;
    opts.max_relaunch_attempts = 2;
    return opts;
}

struct NetRig
{
    gpusim::Device device{gpusim::DeviceSpec{}, 48u << 20};
    common::Rng data_rng{121};
    data::Vocab vocab{300, 10000};
    data::Treebank bank{vocab, 8, data_rng, 7.0, 4, 10};
    common::Rng param_rng{122};
    std::unique_ptr<models::TreeLstmModel> bm;
    std::unique_ptr<vpps::Handle> handle;

    explicit NetRig(int host_threads)
    {
        unsetenv("VPPS_FAULT_RATE");
        unsetenv("VPPS_FAULT_SEED");
        bm = std::make_unique<models::TreeLstmModel>(
            bank, vocab, 16, 32, device, param_rng);
        handle = std::make_unique<vpps::Handle>(
            bm->model(), device, netOpts(host_threads));
    }

    serve::FleetReplica
    slot(const char* name, std::size_t node)
    {
        serve::FleetReplica r{name, &device, bm.get(),
                              handle.get()};
        r.node = node;
        return r;
    }
};

/** What the tracing-on/off A/B and the golden compare both need. */
struct NetRunDigest
{
    std::string net_lane;  //!< canonical net-lane text (may be "")
    serve::FleetCounters counters;
    serve::NetStats net;
    std::vector<std::pair<std::uint64_t, float>> responses;
    double end_us = 0.0;
};

/** A lossy, windowed two-replica scenario; @p traced attaches the
 *  tracer whose net lane the golden test compares. */
NetRunDigest
runNetScenario(int host_threads, bool traced)
{
    NetRig r0(host_threads), r1(host_threads);
    obs::Tracer tracer;

    serve::FleetConfig cfg;
    cfg.admission.queue_capacity = 40;
    cfg.admission.shrink_watermark = 40;
    cfg.admission.shed_watermark = 40;
    cfg.max_failovers_high = 3;
    cfg.max_failovers_low = 2;
    cfg.standby_opts = netOpts(host_threads);
    auto topo = gpusim::Topology::parse(
        "devices 3\n"
        "link 0 1 nvlink\n"
        "link 0 2 pcie\n"
        "linkfault 0 1 down_at_us=9000 down_for_us=4000\n"
        "linkfault 0 2 loss_ppm=50000\n");
    EXPECT_TRUE(topo.ok()) << topo.status().toString();
    cfg.net.topology = std::move(topo).value();
    cfg.net.controller_node = 0;
    cfg.net.faults.link_faults = cfg.net.topology.linkFaults();
    cfg.net.faults.link_seed = 11;

    serve::Fleet fleet({r0.slot("r0", 1), r1.slot("r1", 2)}, cfg,
                       traced ? &tracer : nullptr, nullptr);
    serve::ArrivalConfig ac;
    ac.rate_per_sec = 600.0; // sparse; the window spans several
    ac.count = 24;
    ac.deadline_slack_us = 1.0e9;
    ac.low_deadline_slack_us = 1.0e9;
    ac.low_fraction = 0.25;
    ac.seed = 5;
    fleet.run(serve::generateOpenLoopArrivals(
        ac, 1.0, r0.bm->datasetSize()));

    NetRunDigest d;
    d.counters = fleet.counters();
    d.net = fleet.netStats();
    d.responses = fleet.responses();
    d.end_us = fleet.nowUs();
    if (traced) {
        EXPECT_EQ(tracer.dropped(), 0u);
        for (const obs::TraceEvent& e : tracer.canonical()) {
            if (e.lane != obs::kLaneNet)
                continue;
            char line[256];
            std::snprintf(line, sizeof line,
                          "%s.%s ts=%.6f dur=%.6f ctx=%lld "
                          "a0=%.6f a1=%.6f\n",
                          e.cat, e.name, e.ts_us, e.dur_us,
                          static_cast<long long>(e.ctx), e.arg0,
                          e.arg1);
            d.net_lane += line;
        }
    }
    return d;
}

TEST(GoldenNetTrace, NetLaneIsByteIdenticalAcrossHostThreads)
{
    const NetRunDigest serial = runNetScenario(1, true);
    ASSERT_FALSE(serial.net_lane.empty());
    // The lane covers the full wire story of the scenario.
    EXPECT_NE(serial.net_lane.find("net.dispatch"),
              std::string::npos);
    EXPECT_NE(serial.net_lane.find("net.probe"), std::string::npos);
    EXPECT_NE(serial.net_lane.find("net.send_blocked"),
              std::string::npos);
    EXPECT_NE(serial.net_lane.find("net.param_broadcast"),
              std::string::npos);

    const NetRunDigest parallel = runNetScenario(8, true);
    EXPECT_EQ(serial.net_lane, parallel.net_lane)
        << "host thread count leaked into the net lane";
    // And the run is a pure function of its seeds.
    EXPECT_EQ(serial.net_lane, runNetScenario(1, true).net_lane);
}

TEST(GoldenNetTrace, TracingOnOffDoesNotPerturbTheFleet)
{
    const NetRunDigest on = runNetScenario(1, true);
    const NetRunDigest off = runNetScenario(1, false);
    EXPECT_EQ(on.counters.completed, off.counters.completed);
    EXPECT_EQ(on.counters.routed, off.counters.routed);
    EXPECT_EQ(on.counters.fenced, off.counters.fenced);
    EXPECT_EQ(on.counters.failed_over, off.counters.failed_over);
    EXPECT_EQ(on.net.messages, off.net.messages);
    EXPECT_EQ(on.net.messages_lost, off.net.messages_lost);
    EXPECT_EQ(on.net.retransmits, off.net.retransmits);
    EXPECT_EQ(on.net.bytes_on_wire, off.net.bytes_on_wire);
    EXPECT_DOUBLE_EQ(on.end_us, off.end_us);
    ASSERT_EQ(on.responses.size(), off.responses.size());
    for (std::size_t i = 0; i < on.responses.size(); ++i) {
        EXPECT_EQ(on.responses[i].first, off.responses[i].first);
        std::uint32_t ba = 0, bb = 0;
        std::memcpy(&ba, &on.responses[i].second, 4);
        std::memcpy(&bb, &off.responses[i].second, 4);
        EXPECT_EQ(ba, bb) << "response bits diverged at " << i;
    }
}

} // namespace
