/**
 * @file
 * Acceptance suite for device-loss fault domains and the replicated
 * failover fleet. The headline invariant: with R >= 2 replicas and
 * any single-device loss mid-load, no admitted High-class request is
 * lost, and every completed response is bitwise identical to the
 * fault-free run -- at 1 and at 8 host interpreter threads.
 *
 * Each replica is constructed from identical seeds, so all replicas
 * (and the fault-free sizing replica the tests compare against) hold
 * bitwise-identical parameters and datasets; inferTry() never touches
 * parameters; and the fleet routes requests individually. A response
 * is therefore a pure function of the input index, which is what
 * makes the bitwise cross-checks below meaningful.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <limits>
#include <map>
#include <memory>

#include "common/rng.hpp"
#include "data/treebank.hpp"
#include "data/vocab.hpp"
#include "models/tree_lstm.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/arrival.hpp"
#include "serve/fleet.hpp"
#include "serve/health.hpp"
#include "vpps/handle.hpp"

namespace {

vpps::VppsOptions
fleetOpts(int host_threads)
{
    vpps::VppsOptions opts;
    opts.rpw = 2;
    opts.async = false;
    opts.degrade_on_failure = false;
    opts.host_threads = host_threads;
    opts.max_relaunch_attempts = 2;
    return opts;
}

/** One replica: its own device, dataset, model, handle -- all from
 *  the same seeds, so every Replica is bitwise identical. */
struct Replica
{
    gpusim::Device device{gpusim::DeviceSpec{}, 48u << 20};
    common::Rng data_rng{121};
    data::Vocab vocab{300, 10000};
    data::Treebank bank{vocab, 8, data_rng, 7.0, 4, 10};
    common::Rng param_rng{122};
    std::unique_ptr<models::TreeLstmModel> bm;
    std::unique_ptr<vpps::Handle> handle;

    explicit Replica(int host_threads, bool standby = false)
    {
        // Scenarios script their own fault plans; an inherited soak
        // environment must not perturb them.
        unsetenv("VPPS_FAULT_RATE");
        unsetenv("VPPS_FAULT_SEED");
        bm = std::make_unique<models::TreeLstmModel>(
            bank, vocab, 16, 32, device, param_rng);
        if (!standby)
            handle = std::make_unique<vpps::Handle>(
                bm->model(), device, fleetOpts(host_threads));
    }

    serve::FleetReplica
    slot(const char* name)
    {
        return serve::FleetReplica{name, &device, bm.get(),
                                   handle.get()};
    }
};

/** Simulated service time of one single-request dispatch, measured
 *  on a throwaway replica. */
double
probeReqUs(Replica& r)
{
    graph::ComputationGraph cg;
    auto loss = r.bm->buildLoss(cg, 0);
    const double before = r.handle->stats().wall_us;
    auto res = r.handle->inferTry(r.bm->model(), cg, loss);
    EXPECT_TRUE(res.ok());
    return std::max(1.0, r.handle->stats().wall_us - before);
}

/** Ground-truth response per input index, from a fault-free replica. */
std::vector<float>
referenceLosses(Replica& r)
{
    std::vector<float> out;
    out.reserve(r.bm->datasetSize());
    for (std::size_t i = 0; i < r.bm->datasetSize(); ++i) {
        graph::ComputationGraph cg;
        auto loss = r.bm->buildLoss(cg, i);
        auto res = r.handle->inferTry(r.bm->model(), cg, loss);
        EXPECT_TRUE(res.ok());
        out.push_back(res.ok() ? res.value() : 0.0f);
    }
    return out;
}

void
expectBitwiseEqual(float a, float b, const std::string& what)
{
    std::uint32_t ba = 0, bb = 0;
    std::memcpy(&ba, &a, sizeof ba);
    std::memcpy(&bb, &b, sizeof bb);
    EXPECT_EQ(ba, bb) << what;
}

/** Everything the determinism criteria compare. */
struct FleetDigest
{
    serve::FleetCounters c;
    std::vector<std::pair<std::uint64_t, float>> responses;
    double sim_end_us = 0.0;
};

void
expectIdenticalDigests(const FleetDigest& a, const FleetDigest& b,
                       const std::string& what)
{
    EXPECT_EQ(a.c.arrivals, b.c.arrivals) << what;
    EXPECT_EQ(a.c.admitted, b.c.admitted) << what;
    EXPECT_EQ(a.c.completed, b.c.completed) << what;
    EXPECT_EQ(a.c.timed_out, b.c.timed_out) << what;
    EXPECT_EQ(a.c.failed, b.c.failed) << what;
    EXPECT_EQ(a.c.routed, b.c.routed) << what;
    EXPECT_EQ(a.c.failed_over, b.c.failed_over) << what;
    EXPECT_EQ(a.c.hedge_cancelled, b.c.hedge_cancelled) << what;
    EXPECT_EQ(a.c.lost, b.c.lost) << what;
    EXPECT_EQ(a.c.hedges, b.c.hedges) << what;
    EXPECT_EQ(a.c.probes, b.c.probes) << what;
    EXPECT_EQ(a.c.suspicions, b.c.suspicions) << what;
    EXPECT_EQ(a.c.device_losses, b.c.device_losses) << what;
    EXPECT_DOUBLE_EQ(a.sim_end_us, b.sim_end_us) << what;
    ASSERT_EQ(a.responses.size(), b.responses.size()) << what;
    for (std::size_t i = 0; i < a.responses.size(); ++i) {
        EXPECT_EQ(a.responses[i].first, b.responses[i].first)
            << what << " @" << i;
        expectBitwiseEqual(a.responses[i].second,
                           b.responses[i].second, what);
    }
}

/**
 * The headline scenario: three replicas at 2x offered load, one
 * device wedged mid-run. Generous High-class deadlines (the excess
 * load is turned away at admission, not timed out after it).
 */
FleetDigest
runWedgeScenario(int host_threads, bool wedge)
{
    Replica sizing(1);
    const double req_us = probeReqUs(sizing);

    Replica r0(host_threads), r1(host_threads), r2(host_threads);
    serve::ArrivalConfig ac;
    ac.rate_per_sec = 2.0 * 3.0e6 / req_us; // 2x the 3-replica fleet
    ac.count = 120;
    ac.deadline_slack_us = 80.0 * req_us;
    ac.low_deadline_slack_us = 90.0 * req_us;
    ac.low_fraction = 0.25;
    ac.seed = 5;

    const double start = req_us;
    if (wedge) {
        // Mid-run: ~1/4 into the arrival span (120 reqs at 2x over
        // 3 replicas spans ~20 req_us of simulated time).
        gpusim::FaultPlan plan;
        plan.wedge_at_us = start + 5.0 * req_us;
        r1.device.installFaults(plan);
    }

    serve::FleetConfig cfg;
    cfg.admission.queue_capacity = 24;
    cfg.admission.shrink_watermark = 8;
    cfg.admission.shed_watermark = 12;
    cfg.max_failovers_high = 2;
    cfg.max_failovers_low = 1;
    cfg.standby_opts = fleetOpts(host_threads);
    // Slow probes: the wedge is discovered the hard way, by a failed
    // dispatch, which is what exercises deadline-aware failover.
    cfg.health.probe_interval_us = 10.0 * req_us;

    serve::Fleet fleet(
        {r0.slot("r0"), r1.slot("r1"), r2.slot("r2")}, cfg);
    const auto arrivals = serve::generateOpenLoopArrivals(
        ac, start, r0.bm->datasetSize());
    fleet.run(arrivals);

    FleetDigest d;
    d.c = fleet.counters();
    d.responses = fleet.responses();
    d.sim_end_us = fleet.nowUs();

    // Bitwise ground truth: every completed response equals the
    // fault-free sizing replica's loss for that input.
    const auto ref = referenceLosses(sizing);
    for (const auto& [id, resp] : d.responses) {
        EXPECT_LT(id, arrivals.size());
        if (id >= arrivals.size())
            continue;
        expectBitwiseEqual(
            resp, ref[arrivals[id].input_index],
            "response for request " + std::to_string(id));
    }
    return d;
}

TEST(FleetFailover, WedgeAtDoubleLoadLosesNoAdmittedHigh)
{
    const FleetDigest d = runWedgeScenario(1, true);
    const auto& c = d.c;
    EXPECT_TRUE(c.reconciled());
    EXPECT_EQ(c.arrivals, 120u);
    EXPECT_EQ(c.device_losses, 1u);
    EXPECT_GE(c.failed_over, 1u)
        << "the in-flight request on the wedged replica must fail "
           "over, not vanish";
    // The invariant: every admitted High-class request completes.
    EXPECT_GT(c.admitted_high, 0u);
    EXPECT_EQ(c.completed_high, c.admitted_high);
    EXPECT_EQ(c.timed_out_high, 0u);
    EXPECT_EQ(c.failed_high, 0u);
    // Overload is turned away explicitly, never silently.
    EXPECT_GT(c.shed + c.rejected_queue_full + c.rejected_infeasible,
              0u);
    EXPECT_EQ(c.admitted, c.completed + c.timed_out + c.failed);
}

TEST(FleetFailover, WedgedRunMatchesFaultFreeRunBitwise)
{
    const FleetDigest faulty = runWedgeScenario(1, true);
    const FleetDigest clean = runWedgeScenario(1, false);
    EXPECT_TRUE(clean.c.reconciled());
    EXPECT_EQ(clean.c.device_losses, 0u);
    EXPECT_EQ(clean.c.failed_over, 0u);

    std::map<std::uint64_t, float> clean_by_id(
        clean.responses.begin(), clean.responses.end());
    for (const auto& [id, resp] : faulty.responses) {
        const auto it = clean_by_id.find(id);
        if (it == clean_by_id.end())
            continue; // admission differs under the fault; fine
        expectBitwiseEqual(resp, it->second,
                           "request " + std::to_string(id) +
                               " diverged from the no-fault run");
    }
}

TEST(FleetFailover, WedgeScenarioIsBitwiseIdenticalAcrossThreads)
{
    const FleetDigest d1 = runWedgeScenario(1, true);
    const FleetDigest d8 = runWedgeScenario(8, true);
    expectIdenticalDigests(d1, d8, "wedge at 2x, threads 1 vs 8");
}

TEST(FleetFailover, StallTriggersHedgeSuspicionAndRecovers)
{
    Replica sizing(1);
    const double req_us = probeReqUs(sizing);

    Replica r0(1), r1(1);
    const double start = req_us;
    gpusim::FaultPlan plan;
    plan.stall_at_us = start + 2.0 * req_us;
    plan.stall_duration_us = 15.0 * req_us;
    r0.device.installFaults(plan);

    serve::FleetConfig cfg;
    cfg.hedge_delay_us = 2.0 * req_us;
    cfg.health.probe_interval_us = 0.5 * req_us;
    cfg.standby_opts = fleetOpts(1);

    serve::Fleet fleet({r0.slot("r0"), r1.slot("r1")}, cfg);
    serve::ArrivalConfig ac;
    // Light aggregate load: the healthy replica must have idle
    // windows during the stall, or there is no capacity to hedge
    // into and the hedge keeps re-arming until the slow twin lands.
    ac.rate_per_sec = 0.35 * 2.0e6 / req_us;
    ac.count = 60;
    ac.deadline_slack_us = 60.0 * req_us;
    ac.low_fraction = 0.0; // all High: everything may hedge
    ac.seed = 9;
    const auto arrivals = serve::generateOpenLoopArrivals(
        ac, start, r0.bm->datasetSize());
    fleet.run(arrivals);

    const auto& c = fleet.counters();
    EXPECT_TRUE(c.reconciled());
    EXPECT_EQ(c.device_losses, 0u) << "a stall is not a death";
    EXPECT_GE(c.hedges, 1u)
        << "a dispatch caught in the stall must trigger a hedge";
    EXPECT_GE(c.hedge_cancelled, 1u)
        << "the stalled loser must be cancelled, not lost";
    EXPECT_GE(c.suspicions, 1u)
        << "silent probes during the stall must raise phi past the "
           "threshold";
    EXPECT_EQ(c.completed_high, c.admitted_high)
        << "hedging must mask the stall for the High class";
    EXPECT_GE(r0.handle->stats().recovery.stall_delays, 1u);
    // Both replicas are still in rotation afterwards.
    EXPECT_EQ(fleet.replicaState(0), serve::ReplicaState::Active);
    EXPECT_EQ(fleet.replicaState(1), serve::ReplicaState::Active);

    const auto ref = referenceLosses(sizing);
    for (const auto& [id, resp] : fleet.responses())
        expectBitwiseEqual(resp, ref[arrivals[id].input_index],
                           "stalled-fleet response " +
                               std::to_string(id));
}

TEST(FleetFailover, SmDisableRederivesPlanWithoutFailover)
{
    Replica sizing(1);
    const double req_us = probeReqUs(sizing);
    const auto ref = referenceLosses(sizing);

    Replica r0(1);
    const int sms_before = r0.device.spec().num_sms;
    gpusim::FaultPlan plan;
    plan.sm_disable_at_us = req_us * 3.0;
    plan.sm_disable_count = sms_before / 2;
    r0.device.installFaults(plan);

    serve::FleetConfig cfg;
    cfg.standby_opts = fleetOpts(1);
    serve::Fleet fleet({r0.slot("r0")}, cfg);
    serve::ArrivalConfig ac;
    ac.rate_per_sec = 0.5e6 / req_us;
    ac.count = 40;
    // The in-place re-derivation re-JITs the pinned specialization,
    // which charges modeled NVRTC seconds to the device clock. The
    // deadline slack must absorb that pause, or every request behind
    // the shrink times out and the test measures admission, not
    // recovery.
    ac.deadline_slack_us = 4.0e6 + 120.0 * req_us;
    ac.low_fraction = 0.0;
    ac.seed = 13;
    const auto arrivals = serve::generateOpenLoopArrivals(
        ac, req_us, r0.bm->datasetSize());
    fleet.run(arrivals);

    const auto& c = fleet.counters();
    EXPECT_TRUE(c.reconciled());
    EXPECT_EQ(c.device_losses, 0u);
    EXPECT_EQ(c.failed_over, 0u)
        << "an SM disable shrinks the plan in place; it must not "
           "bounce requests";
    EXPECT_EQ(c.completed, c.admitted);
    EXPECT_EQ(r0.device.disabledSms(), sms_before / 2);
    EXPECT_EQ(r0.device.spec().num_sms,
              sms_before - sms_before / 2);
    EXPECT_EQ(r0.handle->stats().recovery.plan_rederivations, 1u);
    EXPECT_EQ(r0.device.faults()->injected().sm_disables, 1u);

    // Re-deriving the distribution plan over fewer SMs must not
    // change a single bit of any response.
    for (const auto& [id, resp] : fleet.responses())
        expectBitwiseEqual(resp, ref[arrivals[id].input_index],
                           "post-shrink response " +
                               std::to_string(id));
}

TEST(FleetFailover, StandbyRestoresFromBlobAndJoins)
{
    Replica sizing(1);
    const double req_us = probeReqUs(sizing);
    const auto ref = referenceLosses(sizing);

    Replica r0(1), r1(1);
    Replica standby(1, /*standby=*/true);
    gpusim::FaultPlan plan;
    plan.wedge_at_us = req_us * 3.0;
    r0.device.installFaults(plan);

    serve::FleetConfig cfg;
    cfg.standby_opts = fleetOpts(1);
    serve::Fleet fleet(
        {r0.slot("r0"), r1.slot("r1"), standby.slot("warm")}, cfg);

    serve::ArrivalConfig ac;
    ac.rate_per_sec = 0.7 * 2.0e6 / req_us;
    ac.count = 40;
    ac.deadline_slack_us = 80.0 * req_us;
    ac.low_fraction = 0.0;
    ac.seed = 17;
    const auto phase1 = serve::generateOpenLoopArrivals(
        ac, req_us, r0.bm->datasetSize());
    fleet.run(phase1);

    // run() does not return while a promoted standby is still
    // rebuilding, so the join is guaranteed by now.
    const auto& c1 = fleet.counters();
    EXPECT_TRUE(c1.reconciled());
    EXPECT_EQ(c1.device_losses, 1u);
    EXPECT_EQ(c1.standby_joins, 1u);
    EXPECT_EQ(fleet.replicaState(0), serve::ReplicaState::Dead);
    EXPECT_EQ(fleet.replicaState(2), serve::ReplicaState::Active);

    // Phase 2: the promoted standby serves live traffic, and its
    // blob-restored parameters answer bitwise identically.
    ac.seed = 18;
    ac.count = 30;
    auto phase2 = serve::generateOpenLoopArrivals(
        ac, fleet.nowUs() + req_us, r0.bm->datasetSize());
    // Ids are per-generation; offset phase 2 so the combined response
    // log maps every id to a unique arrival record.
    for (auto& a : phase2)
        a.id += phase1.size();
    fleet.run(phase2);

    const auto rep = fleet.report();
    EXPECT_TRUE(rep.counters.reconciled());
    EXPECT_GT(rep.replicas[2].dispatches, 0u)
        << "the joined standby must actually take traffic";
    const std::size_t n1 = phase1.size();
    for (const auto& [id, resp] : fleet.responses()) {
        const auto& trace = id < n1 ? phase1 : phase2;
        const std::size_t idx = id < n1 ? id : id - n1;
        expectBitwiseEqual(resp, ref[trace[idx].input_index],
                           "fleet response " + std::to_string(id));
    }
}

TEST(FleetFailover, AllReplicasDeadDrainsQueueExplicitly)
{
    Replica sizing(1);
    const double req_us = probeReqUs(sizing);

    Replica r0(1);
    gpusim::FaultPlan plan;
    plan.wedge_at_us = req_us * 2.0;
    r0.device.installFaults(plan);

    serve::FleetConfig cfg;
    cfg.standby_opts = fleetOpts(1);
    cfg.max_failovers_high = 2;
    serve::Fleet fleet({r0.slot("r0")}, cfg);
    serve::ArrivalConfig ac;
    ac.rate_per_sec = 1.0e6 / req_us;
    ac.count = 20;
    ac.deadline_slack_us = 50.0 * req_us;
    ac.low_fraction = 0.0;
    ac.seed = 23;
    const auto arrivals = serve::generateOpenLoopArrivals(
        ac, req_us, r0.bm->datasetSize());
    fleet.run(arrivals);

    const auto& c = fleet.counters();
    EXPECT_TRUE(c.reconciled())
        << "even total fleet loss must not leak a request";
    EXPECT_EQ(c.device_losses, 1u);
    EXPECT_EQ(c.admitted, c.completed + c.timed_out + c.failed);
    EXPECT_GT(c.failed + c.timed_out, 0u)
        << "requests stranded by the dead fleet get explicit "
           "dispositions";
}

TEST(FleetFailover, PhiAccrualDetectorSuspectsSilence)
{
    serve::HealthConfig hc;
    hc.probe_interval_us = 100.0;
    hc.phi_threshold = 8.0;
    hc.window = 4;
    serve::PhiAccrualDetector det(hc, 0.0);

    // Regular heartbeats: phi stays tiny right after each beat.
    for (int i = 1; i <= 6; ++i)
        det.heartbeat(100.0 * i);
    EXPECT_LT(det.phi(650.0), 1.0);
    EXPECT_FALSE(det.suspect(650.0));

    // Silence: phi grows linearly in elapsed / mean gap.
    EXPECT_NEAR(det.phi(700.0), 0.43429448190325176, 1e-12);
    EXPECT_GT(det.phi(2500.0), hc.phi_threshold);
    EXPECT_TRUE(det.suspect(2500.0));

    // A heartbeat resets suspicion.
    det.heartbeat(2600.0);
    EXPECT_FALSE(det.suspect(2650.0));
}

TEST(FleetFailover, HealthMonitorSchedulesSeededJitteredProbes)
{
    serve::HealthConfig hc;
    hc.probe_interval_us = 1'000.0;
    hc.jitter_frac = 0.2;
    hc.seed = 41;
    serve::HealthMonitor a(hc, 3, 0.0);
    serve::HealthMonitor b(hc, 3, 0.0);

    for (int step = 0; step < 20; ++step) {
        const double ta = a.nextProbeUs();
        const double tb = b.nextProbeUs();
        ASSERT_DOUBLE_EQ(ta, tb) << "seeded schedules must agree";
        const std::size_t ra = a.nextProbeReplica();
        ASSERT_EQ(ra, b.nextProbeReplica());
        // Jitter stays inside the configured band.
        a.recordProbe(ra, ta, true);
        b.recordProbe(ra, tb, true);
        const double gap = a.nextProbeUs() - ta;
        EXPECT_GE(gap, 0.0);
    }
    // Disabling removes a replica from the schedule; reset restores.
    a.disable(0);
    a.disable(1);
    a.disable(2);
    EXPECT_EQ(a.nextProbeUs(),
              std::numeric_limits<double>::infinity());
    a.reset(1, 5'000.0);
    EXPECT_EQ(a.nextProbeReplica(), 1u);
    EXPECT_GT(a.nextProbeUs(), 5'000.0);
    EXPECT_LE(a.nextProbeUs(),
              5'000.0 + hc.probe_interval_us * (1.0 + hc.jitter_frac));
}

/**
 * Event tie order at the exact microsecond a link-down window opens
 * AND a device wedges (the same instant, by construction): the probe
 * consults the link at its send instant *before* it can consult the
 * device, so the partition masks the wedge. During the window the
 * replica is merely silent (suspicion, no death); the wedge is
 * confirmed -- and the replica declared dead -- only by the first
 * probe (or retransmitted completion) through the healed link. The
 * trace proves it: every "replica_dead" instant lands at or after
 * the heal instant.
 */
TEST(FleetFailover, LinkDownMasksWedgeAtSameInstant)
{
    Replica sizing(1);
    const double req_us = probeReqUs(sizing);

    Replica r0(1), r1(1);
    const double start = req_us;
    const double fault_at = start + 6.0 * req_us;
    const double heal_at = fault_at + 6.0 * req_us;

    gpusim::FaultPlan wedge_plan;
    wedge_plan.wedge_at_us = fault_at;
    r1.device.installFaults(wedge_plan);

    obs::MetricsRegistry mx;
    obs::Tracer tracer;
    serve::FleetConfig cfg;
    cfg.admission.queue_capacity = 24;
    cfg.admission.shrink_watermark = 8;
    cfg.admission.shed_watermark = 12;
    cfg.max_failovers_high = 2;
    cfg.max_failovers_low = 1;
    cfg.standby_opts = fleetOpts(1);
    cfg.health.probe_interval_us = 2.0 * req_us;
    auto topo = gpusim::Topology::parse(
        "devices 3\nlink 0 1 nvlink\nlink 0 2 nvlink\n");
    ASSERT_TRUE(topo.ok()) << topo.status().toString();
    cfg.net.topology = std::move(topo).value();
    cfg.net.controller_node = 0;
    gpusim::LinkFault cut;
    cut.a = 0;
    cut.b = 2; // r1's node: the wedged replica partitions too
    cut.down_at_us = fault_at; // the tie: same microsecond as wedge
    cut.down_for_us = heal_at - fault_at;
    cfg.net.faults.link_faults.push_back(cut);

    serve::FleetReplica s0 = r0.slot("r0");
    s0.node = 1;
    serve::FleetReplica s1 = r1.slot("r1");
    s1.node = 2;
    serve::Fleet fleet({s0, s1}, cfg, &tracer, &mx);

    serve::ArrivalConfig ac;
    ac.rate_per_sec = 1.5 * 2.0e6 / req_us;
    ac.count = 60;
    ac.deadline_slack_us = 120.0 * req_us;
    ac.low_deadline_slack_us = 130.0 * req_us;
    ac.low_fraction = 0.25;
    ac.seed = 5;
    fleet.run(serve::generateOpenLoopArrivals(
        ac, start, r0.bm->datasetSize()));

    const serve::FleetCounters& c = fleet.counters();
    EXPECT_TRUE(c.reconciled());
    EXPECT_EQ(c.completed_high, c.admitted_high);
    EXPECT_EQ(c.timed_out_high, 0u);
    EXPECT_EQ(c.failed_high, 0u);
    // The wedge was confirmed -- but only after the heal.
    EXPECT_EQ(c.device_losses, 1u);
    // The partition showed up as silence first: blocked probe sends,
    // not an immediate death.
    EXPECT_GT(fleet.netStats().sends_blocked, 0u);
    bool saw_dead = false;
    for (const obs::TraceEvent& e : tracer.canonical()) {
        if (e.lane != obs::kLaneFleet ||
            std::string(e.name) != "replica_dead")
            continue;
        saw_dead = true;
        EXPECT_GE(e.ts_us, heal_at)
            << "the wedge must stay masked until the link heals";
    }
    EXPECT_TRUE(saw_dead);
}

/**
 * Overload AND faults at 8 host threads, with the metrics registry
 * attached: every FleetCounters field must agree exactly with its
 * "fleet.<field>" registry counter, and the dispatch identity must
 * reconcile -- the by-construction accounting survives transient
 * faults, a wedge, and a hedge race all at once.
 */
TEST(FleetSoak, OverloadAndFaultsReconcileWithMetrics)
{
    Replica sizing(1);
    const double req_us = probeReqUs(sizing);

    Replica r0(8), r1(8), r2(8);
    const double start = req_us;
    gpusim::FaultPlan wedge_plan;
    wedge_plan.wedge_at_us = start + 8.0 * req_us;
    r1.device.installFaults(wedge_plan);
    gpusim::FaultPlan flaky_plan;
    flaky_plan.seed = 9;
    flaky_plan.launch_fail_rate = 0.05;
    flaky_plan.loss_ecc_rate = 0.03;
    r2.device.installFaults(flaky_plan);

    obs::MetricsRegistry mx;
    obs::Tracer tracer;
    serve::FleetConfig cfg;
    cfg.admission.queue_capacity = 24;
    cfg.admission.shrink_watermark = 8;
    cfg.admission.shed_watermark = 12;
    cfg.hedge_delay_us = 3.0 * req_us;
    cfg.max_failovers_high = 2;
    cfg.max_failovers_low = 1;
    cfg.health.probe_interval_us = 2.0 * req_us;
    cfg.standby_opts = fleetOpts(8);

    serve::Fleet fleet(
        {r0.slot("r0"), r1.slot("r1"), r2.slot("r2")}, cfg, &tracer,
        &mx);
    serve::ArrivalConfig ac;
    ac.rate_per_sec = 2.0 * 3.0e6 / req_us;
    ac.count = 200;
    ac.deadline_slack_us = 80.0 * req_us;
    ac.low_deadline_slack_us = 90.0 * req_us;
    ac.seed = 31;
    const auto arrivals = serve::generateOpenLoopArrivals(
        ac, start, r0.bm->datasetSize());
    fleet.run(arrivals);

    const auto& c = fleet.counters();
    EXPECT_TRUE(c.reconciled());
    EXPECT_EQ(c.device_losses, 1u);

    const std::pair<const char*, std::uint64_t> fields[] = {
        {"fleet.arrivals", c.arrivals},
        {"fleet.admitted", c.admitted},
        {"fleet.rejected_queue_full", c.rejected_queue_full},
        {"fleet.rejected_infeasible", c.rejected_infeasible},
        {"fleet.shed", c.shed},
        {"fleet.completed", c.completed},
        {"fleet.timed_out", c.timed_out},
        {"fleet.failed", c.failed},
        {"fleet.admitted_high", c.admitted_high},
        {"fleet.completed_high", c.completed_high},
        {"fleet.timed_out_high", c.timed_out_high},
        {"fleet.failed_high", c.failed_high},
        {"fleet.routed", c.routed},
        {"fleet.failed_over", c.failed_over},
        {"fleet.hedge_cancelled", c.hedge_cancelled},
        {"fleet.fenced", c.fenced},
        {"fleet.lost", c.lost},
        {"fleet.hedges", c.hedges},
        {"fleet.probes", c.probes},
        {"fleet.suspicions", c.suspicions},
        {"fleet.device_losses", c.device_losses},
        {"fleet.standby_joins", c.standby_joins},
        {"fleet.expired_in_queue", c.expired_in_queue},
        {"fleet.drained_no_replica", c.drained_no_replica},
    };
    for (const auto& [name, value] : fields)
        EXPECT_EQ(mx.counterValue(name), value)
            << name << " disagrees with the fleet counter";
    EXPECT_EQ(mx.histogram("fleet.latency_us").count(), c.completed);
    EXPECT_GT(tracer.canonical().size(), 0u);
}

} // namespace
