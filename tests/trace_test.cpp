/**
 * @file
 * The observability layer's determinism contract (DESIGN.md section
 * 4.8), pinned by golden traces: (a) the canonical event stream of a
 * fixed-seed Tree-LSTM training run is byte-identical across host
 * interpreter thread counts and across repeated runs; (b) so is the
 * stream of a fixed-seed serving run; (c) tracing never perturbs a
 * simulated result -- losses and final parameters are bitwise
 * identical with the tracer attached or absent. Plus unit coverage of
 * the tracer itself: content-based canonical ordering, flight-recorder
 * wrap semantics, exact event formatting, and the Chrome-trace
 * exporter's structure.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <memory>

#include "common/rng.hpp"
#include "data/treebank.hpp"
#include "data/vocab.hpp"
#include "models/tree_lstm.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/arrival.hpp"
#include "serve/server.hpp"
#include "train/harness.hpp"
#include "vpps/handle.hpp"

namespace {

// ---------------------------------------------------------------
// Tracer unit coverage
// ---------------------------------------------------------------

TEST(TraceUnit, CanonicalOrderIsContentBased)
{
    obs::Tracer t;
    // Emitted deliberately out of content order.
    t.instant(3, "b", "x", 10.0);
    t.complete(0, "a", "y", 5.0, 1.0);
    t.counter(obs::kLaneDevice, "dram.load", "weights", 5.0, 64.0);
    t.instant(0, "a", "x", 5.0);

    const auto events = t.canonical();
    ASSERT_EQ(events.size(), 4u);
    // ts first; at equal ts, lane; the device lane sorts after VPPs.
    EXPECT_EQ(events[0].lane, 0);
    EXPECT_DOUBLE_EQ(events[0].ts_us, 5.0);
    EXPECT_EQ(events[1].lane, 0);
    EXPECT_EQ(events[2].lane, obs::kLaneDevice);
    EXPECT_DOUBLE_EQ(events[3].ts_us, 10.0);
    // Complete sorts before Instant at equal (ts, lane).
    EXPECT_EQ(events[0].kind, obs::EventKind::Complete);
    EXPECT_EQ(events[1].kind, obs::EventKind::Instant);
    for (std::size_t i = 1; i < events.size(); ++i)
        EXPECT_FALSE(obs::canonicalLess(events[i], events[i - 1]));
}

TEST(TraceUnit, RingWrapKeepsLatestAndCountsDrops)
{
    obs::Tracer t(4);
    for (int i = 0; i < 10; ++i)
        t.instant(0, "c", "tick", static_cast<double>(i));
    EXPECT_EQ(t.recorded(), 10u);
    EXPECT_EQ(t.dropped(), 6u);
    const auto events = t.canonical();
    ASSERT_EQ(events.size(), 4u);
    // Flight recorder: the *oldest* events were overwritten.
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_DOUBLE_EQ(events[i].ts_us,
                         static_cast<double>(6 + i));
}

TEST(TraceUnit, ClearForgetsEventsButKeepsCapacity)
{
    obs::Tracer t(8);
    t.instant(0, "c", "tick", 1.0);
    ASSERT_EQ(t.recorded(), 1u);
    t.clear();
    EXPECT_EQ(t.recorded(), 0u);
    EXPECT_EQ(t.dropped(), 0u);
    EXPECT_TRUE(t.canonical().empty());
    EXPECT_EQ(t.shardCapacity(), 8u);
    t.instant(0, "c", "tick", 2.0);
    EXPECT_EQ(t.recorded(), 1u);
}

TEST(TraceUnit, FormatEventIsStableAndExact)
{
    obs::TraceEvent e;
    e.ts_us = 1.5;
    e.dur_us = 0.25;
    e.arg0 = 3.0;
    e.arg1 = 0.0;
    e.ctx = 7;
    e.lane = 2;
    e.kind = obs::EventKind::Complete;
    e.cat = "vpp";
    e.name = "segment";
    EXPECT_EQ(obs::formatEvent(e),
              "1.5 vpp 2 span vpp.segment ctx=7 dur=0.25 a0=3 a1=0");
    // %.17g round-trips doubles exactly; a value with no short
    // decimal form must still format deterministically.
    obs::TraceEvent f = e;
    f.ts_us = 0.1 + 0.2;
    const std::string line = obs::formatEvent(f);
    EXPECT_NE(line.find("0.30000000000000004"), std::string::npos)
        << line;
}

TEST(TraceUnit, CanonicalLessBreaksTiesOnEveryField)
{
    obs::TraceEvent a;
    a.ts_us = 1.0;
    a.lane = 0;
    a.kind = obs::EventKind::Complete;
    a.cat = "c";
    a.name = "n";
    obs::TraceEvent b = a;
    EXPECT_FALSE(obs::canonicalLess(a, b));
    EXPECT_FALSE(obs::canonicalLess(b, a));
    b.ctx = 1;
    EXPECT_TRUE(obs::canonicalLess(a, b));
    b = a;
    b.dur_us = 2.0;
    EXPECT_TRUE(obs::canonicalLess(a, b));
    b = a;
    b.arg0 = 1.0;
    EXPECT_TRUE(obs::canonicalLess(a, b));
    b = a;
    b.arg1 = 1.0;
    EXPECT_TRUE(obs::canonicalLess(a, b));
    EXPECT_FALSE(obs::canonicalLess(b, a));
}

TEST(TraceUnit, ChromeExportEscapesHostileNames)
{
    // cat/name are static strings by convention, but the exporter
    // must stay valid JSON even for hostile ones.
    obs::Tracer t;
    t.instant(0, "quote\"cat", "back\\slash", 1.0);
    t.instant(0, "ctl", "bell\x07name", 2.0);
    const std::string json = obs::chromeTraceJson(t);
    EXPECT_NE(json.find("quote\\\"cat"), std::string::npos) << json;
    EXPECT_NE(json.find("back\\\\slash"), std::string::npos) << json;
    EXPECT_NE(json.find("bell\\u0007name"), std::string::npos)
        << json;
}

TEST(TraceUnit, LaneAndKindNames)
{
    EXPECT_EQ(obs::laneName(3), "vpp 3");
    EXPECT_EQ(obs::laneName(obs::kLaneDevice), "device");
    EXPECT_EQ(obs::laneName(obs::kLaneHost), "host");
    EXPECT_EQ(obs::laneName(obs::kLaneRecovery), "recovery");
    EXPECT_EQ(obs::laneName(obs::kLaneServe), "serve");
    EXPECT_STREQ(obs::eventKindName(obs::EventKind::Complete),
                 "span");
    EXPECT_STREQ(obs::eventKindName(obs::EventKind::Instant),
                 "instant");
    EXPECT_STREQ(obs::eventKindName(obs::EventKind::Counter),
                 "counter");
}

// ---------------------------------------------------------------
// Golden traces
// ---------------------------------------------------------------

/** Fixed-seed Tree-LSTM rig (the fault_recovery_test factory, with
 *  the observability plane attached before any kernel runs). */
struct TraceRig
{
    gpusim::Device device{gpusim::DeviceSpec{}, 48u << 20};
    common::Rng data_rng{121};
    data::Vocab vocab{300, 10000};
    data::Treebank bank{vocab, 8, data_rng, 7.0, 4, 10};
    common::Rng param_rng{122};
    std::unique_ptr<models::TreeLstmModel> bm;
    obs::Tracer tracer{1u << 20};

    explicit TraceRig(bool traced = true)
    {
        unsetenv("VPPS_FAULT_RATE");
        unsetenv("VPPS_FAULT_SEED");
        bm = std::make_unique<models::TreeLstmModel>(
            bank, vocab, 16, 32, device, param_rng);
        if (traced)
            device.installTracer(&tracer);
    }
};

vpps::VppsOptions
traceOptions(int host_threads)
{
    vpps::VppsOptions opts;
    opts.rpw = 2;
    opts.async = false;
    opts.host_threads = host_threads;
    return opts;
}

/** Train @p batches fixed batches; returns the per-step losses. */
std::vector<float>
trainSteps(vpps::Handle& handle, models::BenchmarkModel& bm,
           int batches)
{
    std::vector<float> losses;
    for (int step = 0; step < batches; ++step) {
        graph::ComputationGraph cg;
        losses.push_back(handle.fb(
            bm.model(), cg,
            train::buildSuperGraph(
                bm, cg, static_cast<std::size_t>(step) * 2, 2)));
    }
    return losses;
}

std::string
treeLstmGolden(int host_threads)
{
    TraceRig rig;
    vpps::Handle handle(rig.bm->model(), rig.device,
                        traceOptions(host_threads));
    trainSteps(handle, *rig.bm, 3);
    EXPECT_EQ(rig.tracer.dropped(), 0u)
        << "golden comparison needs the complete stream";
    EXPECT_GT(rig.tracer.recorded(), 0u);
    return rig.tracer.canonicalText();
}

TEST(GoldenTrace, TreeLstmRunIsIdenticalAcrossHostThreads)
{
    const std::string serial = treeLstmGolden(1);
    ASSERT_FALSE(serial.empty());
    // The canonical stream covers every instrumented subsystem the
    // training path touches.
    EXPECT_NE(serial.find(" vpp.segment "), std::string::npos);
    EXPECT_NE(serial.find(" barrier.signal "), std::string::npos);
    EXPECT_NE(serial.find(" barrier.wait "), std::string::npos);
    EXPECT_NE(serial.find(" host.decode "), std::string::npos);
    EXPECT_NE(serial.find(" gpu.persistent_kernel "),
              std::string::npos);
    EXPECT_NE(serial.find(" dram.load.weights "), std::string::npos);

    const std::string parallel = treeLstmGolden(8);
    EXPECT_EQ(serial, parallel)
        << "host thread count leaked into the canonical stream";
    // And the whole pipeline is a pure function of its seeds.
    EXPECT_EQ(serial, treeLstmGolden(1));
    EXPECT_EQ(parallel, treeLstmGolden(8));
}

TEST(GoldenTrace, TracingDoesNotPerturbTraining)
{
    TraceRig traced(true), bare(false);
    vpps::Handle th(traced.bm->model(), traced.device,
                    traceOptions(2));
    vpps::Handle bh(bare.bm->model(), bare.device, traceOptions(2));

    const auto traced_losses = trainSteps(th, *traced.bm, 3);
    const auto bare_losses = trainSteps(bh, *bare.bm, 3);

    ASSERT_EQ(traced_losses.size(), bare_losses.size());
    EXPECT_EQ(std::memcmp(traced_losses.data(), bare_losses.data(),
                          traced_losses.size() * sizeof(float)),
              0)
        << "tracing changed a loss bit";
    const auto tp = train::captureCheckpoint(traced.bm->model(),
                                             traced.device, 0)
                        .params;
    const auto bp =
        train::captureCheckpoint(bare.bm->model(), bare.device, 0)
            .params;
    ASSERT_EQ(tp.size(), bp.size());
    EXPECT_EQ(
        std::memcmp(tp.data(), bp.data(), tp.size() * sizeof(float)),
        0)
        << "tracing changed a parameter bit";
    // Simulated time is part of the result contract too.
    EXPECT_EQ(th.stats().wall_us, bh.stats().wall_us);
    EXPECT_GT(traced.tracer.recorded(), 0u);
    EXPECT_EQ(bare.tracer.recorded(), 0u);
}

/** A fixed-seed serving run with the tracer attached; returns the
 *  canonical stream. */
std::string
servingGolden(int host_threads)
{
    TraceRig rig;
    auto opts = traceOptions(host_threads);
    opts.degrade_on_failure = false;
    vpps::Handle handle(rig.bm->model(), rig.device, opts);

    serve::ServerConfig cfg;
    serve::Server sizing(rig.device,
                         {{"treelstm", rig.bm.get(), &handle}}, cfg);
    sizing.calibrate();
    const double batch_us = sizing.serviceUs(0, cfg.batch.max_batch);
    cfg.batch.window_us = batch_us;

    serve::Server server(rig.device,
                         {{"treelstm", rig.bm.get(), &handle}}, cfg);
    server.calibrate();

    serve::ArrivalConfig ac;
    ac.rate_per_sec = 2.0 * server.capacityPerSec();
    ac.count = 60;
    ac.deadline_slack_us = 25.0 * batch_us;
    ac.low_deadline_slack_us = 30.0 * batch_us;
    ac.low_fraction = 0.25;
    ac.seed = 5;
    server.run(serve::generateOpenLoopArrivals(
        ac, server.nowUs() + batch_us, rig.bm->datasetSize()));
    EXPECT_TRUE(server.counters().reconciled());

    EXPECT_EQ(rig.tracer.dropped(), 0u);
    return rig.tracer.canonicalText();
}

TEST(GoldenTrace, ServingRunIsIdenticalAcrossHostThreads)
{
    const std::string serial = servingGolden(1);
    ASSERT_FALSE(serial.empty());
    // Admission decisions and batch spans are on the serve lane.
    EXPECT_NE(serial.find(" serve.admit "), std::string::npos);
    EXPECT_NE(serial.find(" serve.batch "), std::string::npos);
    EXPECT_NE(serial.find(" serve.complete "), std::string::npos);
    const std::string parallel = servingGolden(8);
    EXPECT_EQ(serial, parallel)
        << "serving trace depends on host thread count";
}

TEST(GoldenTrace, ChromeExportIsDeterministicAndStructured)
{
    TraceRig rig;
    vpps::Handle handle(rig.bm->model(), rig.device,
                        traceOptions(1));
    trainSteps(handle, *rig.bm, 1);
    ASSERT_EQ(rig.tracer.dropped(), 0u);

    const std::string json = obs::chromeTraceJson(rig.tracer);
    // Same tracer, same bytes.
    EXPECT_EQ(json, obs::chromeTraceJson(rig.tracer));
    // Trace Event Format essentials the viewers rely on.
    EXPECT_EQ(json.rfind("{\"traceEvents\": [", 0), 0u);
    EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""),
              std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"M\""), std::string::npos)
        << "lane metadata missing";
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
    EXPECT_NE(json.find("\"args\": {\"name\": \"device\"}"),
              std::string::npos);
    EXPECT_NE(json.find("\"args\": {\"name\": \"vpp 0\"}"),
              std::string::npos);

    const std::string path = testing::TempDir() + "trace_test.json";
    ASSERT_TRUE(obs::writeChromeTrace(path, rig.tracer).ok());
    std::remove(path.c_str());
    EXPECT_FALSE(
        obs::writeChromeTrace("/nonexistent-dir/t.json", rig.tracer)
            .ok());
}

} // namespace
