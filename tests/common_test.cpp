/** @file Unit tests for the common utilities. */
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.hpp"
#include "common/table.hpp"

namespace {

TEST(Rng, DeterministicAcrossInstances)
{
    common::Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    common::Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next()) ? 1 : 0;
    EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowStaysInRange)
{
    common::Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBelow(17), 17u);
}

TEST(Rng, NextIntInclusiveBounds)
{
    common::Rng rng(7);
    std::set<int> seen;
    for (int i = 0; i < 2000; ++i) {
        const int v = rng.nextInt(3, 6);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 6);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u) << "all values in [3,6] should occur";
}

TEST(Rng, DoubleInUnitInterval)
{
    common::Rng rng(9);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double d = rng.nextDouble();
        ASSERT_GE(d, 0.0);
        ASSERT_LT(d, 1.0);
        sum += d;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, GaussianMoments)
{
    common::Rng rng(11);
    double sum = 0.0, sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.nextGaussian(2.0, 3.0);
        sum += g;
        sq += g * g;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 2.0, 0.1);
    EXPECT_NEAR(std::sqrt(var), 3.0, 0.15);
}

TEST(Rng, ZipfFavorsLowRanks)
{
    common::Rng rng(13);
    std::size_t low = 0, high = 0;
    for (int i = 0; i < 20000; ++i) {
        const std::size_t r = rng.nextZipf(1000, 1.05);
        ASSERT_LT(r, 1000u);
        if (r < 10)
            ++low;
        if (r >= 500)
            ++high;
    }
    EXPECT_GT(low, high * 3)
        << "Zipf mass must concentrate at low ranks";
}

TEST(Rng, ShuffleIsPermutation)
{
    common::Rng rng(17);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto sorted = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, sorted);
}

TEST(Table, AlignsAndRendersRows)
{
    common::Table t({"a", "bbbb"});
    t.addRow({"1", "2"});
    t.addRow({"333", "4"});
    const std::string s = t.str();
    EXPECT_NE(s.find("| bbbb |"), std::string::npos);
    EXPECT_NE(s.find("333"), std::string::npos);
}

TEST(Table, CsvHasHeaderAndRows)
{
    common::Table t({"x", "y"});
    t.addRow({"1", "2"});
    EXPECT_EQ(t.csv(), "x,y\n1,2\n");
}

TEST(Table, RejectsArityMismatch)
{
    common::Table t({"x", "y"});
    EXPECT_DEATH(t.addRow({"only-one"}), "arity");
}

TEST(Table, NumberFormatting)
{
    EXPECT_EQ(common::Table::fmt(3.14159, 2), "3.14");
    EXPECT_EQ(common::Table::fmtInt(42), "42");
}

} // namespace
