/** @file Unit tests for the synthetic corpora. */
#include <gtest/gtest.h>

#include <functional>
#include <set>

#include "data/ner_corpus.hpp"
#include "data/treebank.hpp"
#include "data/vocab.hpp"

namespace {

TEST(Vocab, FrequenciesAreZipfMonotone)
{
    data::Vocab vocab(1000);
    for (std::uint32_t w = 1; w < 1000; ++w)
        EXPECT_LE(vocab.frequency(w), vocab.frequency(w - 1));
    EXPECT_GT(vocab.frequency(0), 10000u);
}

TEST(Vocab, RareWordsExistForCharPath)
{
    data::Vocab vocab(10000);
    std::size_t rare = 0;
    for (std::uint32_t w = 0; w < 10000; ++w)
        rare += vocab.isRare(w) ? 1 : 0;
    EXPECT_GT(rare, 100u)
        << "the BiLSTMwChar rare-word path needs rare types";
    EXPECT_LT(rare, 10000u);
    EXPECT_FALSE(vocab.isRare(0));
}

TEST(Vocab, SamplingFavorsFrequentWords)
{
    data::Vocab vocab(5000);
    common::Rng rng(31);
    std::size_t head = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        if (vocab.sample(rng) < 50)
            ++head;
    EXPECT_GT(head, static_cast<std::size_t>(n) / 4)
        << "top-50 types must dominate a Zipf corpus";
}

TEST(Vocab, CharsAreDeterministicAndBounded)
{
    data::Vocab vocab(100);
    const auto a = vocab.chars(42);
    const auto b = vocab.chars(42);
    EXPECT_EQ(a, b);
    EXPECT_GE(a.size(), 3u);
    EXPECT_LE(a.size(), 10u);
    for (auto c : a)
        EXPECT_LT(c, data::Vocab::kAlphabet);
    EXPECT_NE(vocab.chars(1), vocab.chars(2));
}

TEST(Treebank, TreesAreWellFormedBinaryParses)
{
    common::Rng rng(33);
    data::Vocab vocab(500);
    data::Treebank bank(vocab, 50, rng, 12.0, 4, 30);
    ASSERT_EQ(bank.size(), 50u);
    for (std::size_t i = 0; i < bank.size(); ++i) {
        const auto& t = bank.sentence(i);
        EXPECT_GE(t.length(), 4u);
        EXPECT_LE(t.length(), 30u);
        EXPECT_LT(t.label, data::Treebank::kNumLabels);
        // A binary tree over n leaves has 2n - 1 nodes.
        EXPECT_EQ(t.nodes.size(), 2 * t.length() - 1);
        // Leaves visited left-to-right spell the sentence.
        std::vector<std::uint32_t> leaves;
        std::function<void(std::int32_t)> walk =
            [&](std::int32_t n) {
                const auto& node =
                    t.nodes[static_cast<std::size_t>(n)];
                if (node.isLeaf()) {
                    leaves.push_back(node.word);
                    return;
                }
                walk(node.left);
                walk(node.right);
            };
        walk(t.root);
        EXPECT_EQ(leaves, t.words);
        EXPECT_GE(t.depth(), 1u);
        EXPECT_LT(t.depth(), t.length());
    }
}

TEST(Treebank, ShapesVaryAcrossInputs)
{
    common::Rng rng(34);
    data::Vocab vocab(500);
    data::Treebank bank(vocab, 64, rng);
    std::set<std::size_t> lengths, depths;
    for (std::size_t i = 0; i < bank.size(); ++i) {
        lengths.insert(bank.sentence(i).length());
        depths.insert(bank.sentence(i).depth());
    }
    EXPECT_GT(lengths.size(), 8u)
        << "dynamic nets need varying input sizes";
    EXPECT_GT(depths.size(), 5u)
        << "and varying tree shapes";
}

TEST(Treebank, GenerationIsDeterministic)
{
    data::Vocab vocab(500);
    common::Rng a(35), b(35);
    data::Treebank ba(vocab, 10, a);
    data::Treebank bb(vocab, 10, b);
    for (std::size_t i = 0; i < 10; ++i) {
        EXPECT_EQ(ba.sentence(i).words, bb.sentence(i).words);
        EXPECT_EQ(ba.sentence(i).label, bb.sentence(i).label);
    }
}

TEST(NerCorpus, TagsAreValidIobSequences)
{
    common::Rng rng(36);
    data::Vocab vocab(2000);
    data::NerCorpus corpus(vocab, 40, rng);
    std::size_t entities = 0;
    for (std::size_t i = 0; i < corpus.size(); ++i) {
        const auto& s = corpus.sentence(i);
        ASSERT_EQ(s.words.size(), s.tags.size());
        for (std::size_t j = 0; j < s.tags.size(); ++j) {
            EXPECT_LT(s.tags[j], data::NerCorpus::kNumTags);
            // An I- tag (even, nonzero) must continue the matching
            // B- tag or another I- of the same type.
            if (s.tags[j] != 0 && s.tags[j] % 2 == 0) {
                ASSERT_GT(j, 0u);
                EXPECT_TRUE(s.tags[j - 1] == s.tags[j] - 1 ||
                            s.tags[j - 1] == s.tags[j])
                    << "I-tag continuation broken at " << j;
            }
            entities += s.tags[j] % 2 == 1 ? 1 : 0;
        }
    }
    EXPECT_GT(entities, 20u) << "entities must actually occur";
}

TEST(NerCorpus, LengthsVary)
{
    common::Rng rng(37);
    data::Vocab vocab(2000);
    data::NerCorpus corpus(vocab, 64, rng);
    std::set<std::size_t> lengths;
    for (std::size_t i = 0; i < corpus.size(); ++i)
        lengths.insert(corpus.sentence(i).length());
    EXPECT_GT(lengths.size(), 8u);
}

} // namespace
