/**
 * @file
 * The serving layer's acceptance suite: (a) below capacity with no
 * faults every request completes on time; (b) at 2x capacity the
 * server stays up, sheds/rejects explicitly, and every *admitted*
 * request still meets its deadline; (c) permanent primary-kernel
 * faults trip the circuit breaker onto the GEMM fallback, and the
 * breaker closes again once the faults clear. All of it bitwise
 * reproducible across host interpreter thread counts, because every
 * decision runs in simulated time.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <memory>

#include "common/rng.hpp"
#include "data/treebank.hpp"
#include "data/vocab.hpp"
#include "models/tree_lstm.hpp"
#include "serve/arrival.hpp"
#include "serve/server.hpp"
#include "vpps/handle.hpp"

namespace {

/** One served Tree-LSTM endpoint on a fresh simulated device. */
struct ServeRig
{
    gpusim::Device device{gpusim::DeviceSpec{}, 48u << 20};
    common::Rng data_rng{121};
    data::Vocab vocab{300, 10000};
    data::Treebank bank{vocab, 8, data_rng, 7.0, 4, 10};
    common::Rng param_rng{122};
    std::unique_ptr<models::TreeLstmModel> bm;
    std::unique_ptr<vpps::Handle> handle;

    explicit ServeRig(int host_threads = 1, int relaunch_budget = 2)
    {
        // Serving tests script their own fault plans; an inherited
        // soak environment must not perturb the clean runs.
        unsetenv("VPPS_FAULT_RATE");
        unsetenv("VPPS_FAULT_SEED");
        bm = std::make_unique<models::TreeLstmModel>(
            bank, vocab, 16, 32, device, param_rng);
        vpps::VppsOptions opts;
        opts.rpw = 2;
        opts.async = false;
        opts.degrade_on_failure = false; // the breaker owns routing
        opts.host_threads = host_threads;
        opts.max_relaunch_attempts = relaunch_budget;
        handle = std::make_unique<vpps::Handle>(bm->model(), device,
                                                opts);
    }

    serve::Server
    makeServer(const serve::ServerConfig& cfg = {})
    {
        return serve::Server(
            device, {{"treelstm", bm.get(), handle.get()}}, cfg);
    }
};

/** Everything the acceptance criteria compare bitwise. */
struct RunDigest
{
    serve::ServerCounters counters;
    std::vector<double> latencies;
    double sim_end_us = 0.0;
    serve::BreakerReport breaker;
};

void
expectBitwiseIdentical(const RunDigest& a, const RunDigest& b,
                       const std::string& what)
{
    EXPECT_EQ(a.counters.arrivals, b.counters.arrivals) << what;
    EXPECT_EQ(a.counters.admitted, b.counters.admitted) << what;
    EXPECT_EQ(a.counters.completed, b.counters.completed) << what;
    EXPECT_EQ(a.counters.timed_out, b.counters.timed_out) << what;
    EXPECT_EQ(a.counters.failed, b.counters.failed) << what;
    EXPECT_EQ(a.counters.rejected_queue_full,
              b.counters.rejected_queue_full)
        << what;
    EXPECT_EQ(a.counters.rejected_infeasible,
              b.counters.rejected_infeasible)
        << what;
    EXPECT_EQ(a.counters.shed, b.counters.shed) << what;
    EXPECT_EQ(a.counters.retries, b.counters.retries) << what;
    EXPECT_EQ(a.counters.batches, b.counters.batches) << what;
    EXPECT_EQ(a.counters.fallback_batches,
              b.counters.fallback_batches)
        << what;
    EXPECT_DOUBLE_EQ(a.sim_end_us, b.sim_end_us) << what;
    ASSERT_EQ(a.latencies.size(), b.latencies.size()) << what;
    EXPECT_EQ(std::memcmp(a.latencies.data(), b.latencies.data(),
                          a.latencies.size() * sizeof(double)),
              0)
        << what << ": latency traces diverged";
    EXPECT_EQ(a.breaker.trips, b.breaker.trips) << what;
    EXPECT_EQ(a.breaker.probes, b.breaker.probes) << what;
}

/** Calibrated batch service time for this rig, us (probe server). */
double
calibratedBatchUs(ServeRig& rig, const serve::ServerConfig& cfg)
{
    serve::Server probe = rig.makeServer(cfg);
    probe.calibrate();
    return probe.serviceUs(0, cfg.batch.max_batch);
}

/** The load scenario shared by the capacity tests: a window of one
 *  full-batch service time, deadlines 25 windows out. */
serve::ServerConfig
scaledConfig(double batch_us)
{
    serve::ServerConfig cfg;
    cfg.batch.window_us = batch_us;
    return cfg;
}

RunDigest
runLoadScenario(int host_threads, double load_multiplier,
                std::size_t count)
{
    ServeRig rig(host_threads);
    serve::ServerConfig probe_cfg;
    const double batch_us = calibratedBatchUs(rig, probe_cfg);
    const serve::ServerConfig cfg = scaledConfig(batch_us);

    serve::Server server = rig.makeServer(cfg);
    server.calibrate();
    const double cap = server.capacityPerSec();

    serve::ArrivalConfig ac;
    ac.rate_per_sec = load_multiplier * cap;
    ac.count = count;
    ac.deadline_slack_us = 25.0 * batch_us;
    ac.low_deadline_slack_us = 30.0 * batch_us;
    ac.low_fraction = 0.25;
    ac.seed = 5;
    const auto arrivals = serve::generateOpenLoopArrivals(
        ac, server.nowUs() + batch_us, rig.bm->datasetSize());
    server.run(arrivals);

    const auto rep = server.report();
    RunDigest d;
    d.counters = rep.counters;
    d.latencies = server.latencies();
    d.sim_end_us = rep.sim_end_us;
    d.breaker = rep.breakers.front();
    return d;
}

TEST(Serving, UnderloadCompletesEverythingOnTime)
{
    const RunDigest d = runLoadScenario(1, 0.7, 80);
    const auto& c = d.counters;
    EXPECT_TRUE(c.reconciled());
    EXPECT_EQ(c.arrivals, 80u);
    EXPECT_EQ(c.admitted, 80u)
        << "below capacity nothing may be rejected or shed";
    EXPECT_EQ(c.completed, 80u);
    EXPECT_EQ(c.timed_out, 0u);
    EXPECT_EQ(c.failed, 0u);
    EXPECT_EQ(c.shed, 0u);
    EXPECT_EQ(c.rejected_queue_full + c.rejected_infeasible, 0u);
    EXPECT_EQ(d.latencies.size(), 80u);
    EXPECT_EQ(d.breaker.trips, 0u);
    const auto stats = serve::latencyStats(d.latencies);
    EXPECT_GT(stats.p50_us, 0.0);
    EXPECT_GE(stats.p99_us, stats.p50_us);
}

TEST(Serving, OverloadShedsExplicitlyAndAdmittedMeetDeadlines)
{
    const RunDigest d = runLoadScenario(1, 2.0, 160);
    const auto& c = d.counters;
    EXPECT_TRUE(c.reconciled());
    EXPECT_EQ(c.arrivals, 160u);
    // The server must stay up and keep serving...
    EXPECT_GT(c.completed, 0u);
    // ...while turning the excess away explicitly, never silently.
    EXPECT_GT(c.shed + c.rejected_queue_full + c.rejected_infeasible,
              0u);
    EXPECT_LT(c.admitted, c.arrivals);
    // Admission keeps its promise: whatever it lets in, finishes in
    // time. Misses would be visible counters, not hidden drops.
    EXPECT_EQ(c.timed_out, 0u);
    EXPECT_EQ(c.failed, 0u);
    EXPECT_EQ(c.completed, c.admitted);
    // Brown-out engaged: some arrivals saw a degraded level.
    std::uint64_t degraded = 0;
    for (int lvl = 1; lvl < 4; ++lvl)
        degraded += c.arrivals_at_level[lvl];
    EXPECT_GT(degraded, 0u);
}

TEST(Serving, OverloadIsBitwiseReproducibleAcrossHostThreads)
{
    const RunDigest d1 = runLoadScenario(1, 2.0, 160);
    const RunDigest d8 = runLoadScenario(8, 2.0, 160);
    expectBitwiseIdentical(d1, d8, "2x overload, threads 1 vs 8");
}

/** Breaker scenario: permanent launch faults poison the primary
 *  (gradient-cached) kernel; the GEMM fallback is immune. Phase 2
 *  clears the faults and expects the breaker to re-close. */
RunDigest
runBreakerScenario(int host_threads)
{
    ServeRig rig(host_threads);
    gpusim::FaultPlan plan;
    plan.permanent_launch_faults = true;
    rig.device.installFaults(plan);

    // Analytic service prior (calibration probes would fail under
    // permanent faults, which is itself part of the scenario).
    serve::ServerConfig cfg;
    serve::Server sizing = rig.makeServer(cfg);
    const double batch_us =
        sizing.serviceUs(0, cfg.batch.max_batch);
    cfg.batch.window_us = batch_us;
    cfg.breaker.failure_threshold = 2;
    // Cooldown longer than phase 1, so the primary is probed only
    // after the operator clears the faults (phase 2).
    cfg.breaker.cooldown_us = 10'000.0 * batch_us;
    cfg.max_retries_high = 1;
    cfg.max_retries_low = 0;

    serve::Server server = rig.makeServer(cfg);
    serve::ArrivalConfig ac;
    ac.rate_per_sec = 0.5 * 8.0e6 / batch_us;
    ac.count = 60;
    ac.deadline_slack_us = 60.0 * batch_us;
    ac.low_deadline_slack_us = 60.0 * batch_us;
    ac.seed = 11;
    const auto phase1 = serve::generateOpenLoopArrivals(
        ac, server.nowUs() + batch_us, rig.bm->datasetSize());
    server.run(phase1);

    const auto mid = server.report();
    EXPECT_TRUE(mid.counters.reconciled());
    EXPECT_GE(mid.breakers.front().trips, 1u)
        << "permanent primary faults must trip the breaker";
    EXPECT_EQ(mid.breakers.front().state,
              serve::CircuitBreaker::State::Open);
    EXPECT_EQ(mid.breakers.front().probes, 0u)
        << "cooldown must outlast phase 1";
    EXPECT_GT(mid.counters.fallback_batches, 0u)
        << "traffic must flow through the fallback while open";
    EXPECT_GT(mid.counters.completed, 0u)
        << "the fallback must actually serve requests";

    // Phase 2: faults repaired; arrivals resume after the cooldown.
    rig.device.clearFaults();
    ac.seed = 12;
    ac.count = 40;
    const auto phase2 = serve::generateOpenLoopArrivals(
        ac, server.nowUs() + cfg.breaker.cooldown_us,
        rig.bm->datasetSize());
    server.run(phase2);

    const auto rep = server.report();
    EXPECT_TRUE(rep.counters.reconciled());
    EXPECT_GE(rep.breakers.front().probes, 1u)
        << "the half-open state must probe the primary";
    EXPECT_GE(rep.breakers.front().closes, 1u)
        << "successful probes must re-close the breaker";
    EXPECT_EQ(rep.breakers.front().state,
              serve::CircuitBreaker::State::Closed);
    EXPECT_EQ(rep.counters.completed + rep.counters.timed_out +
                  rep.counters.failed,
              rep.counters.admitted);

    RunDigest d;
    d.counters = rep.counters;
    d.latencies = server.latencies();
    d.sim_end_us = rep.sim_end_us;
    d.breaker = rep.breakers.front();
    return d;
}

TEST(Serving, BreakerTripsToFallbackAndRecloses)
{
    runBreakerScenario(1);
}

TEST(Serving, BreakerScenarioIsBitwiseReproducibleAcrossThreads)
{
    const RunDigest d1 = runBreakerScenario(1);
    const RunDigest d8 = runBreakerScenario(8);
    expectBitwiseIdentical(d1, d8, "breaker, threads 1 vs 8");
}

TEST(Serving, ArrivalTraceIsDeterministicAndSorted)
{
    serve::ArrivalConfig ac;
    ac.rate_per_sec = 500.0;
    ac.count = 200;
    ac.num_endpoints = 3;
    ac.low_fraction = 0.3;
    ac.seed = 42;
    const auto a = serve::generateOpenLoopArrivals(ac, 100.0, 16);
    const auto b = serve::generateOpenLoopArrivals(ac, 100.0, 16);
    ASSERT_EQ(a.size(), 200u);
    bool any_low = false, any_high = false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].arrival_us, b[i].arrival_us);
        EXPECT_EQ(a[i].endpoint, b[i].endpoint);
        EXPECT_EQ(a[i].input_index, b[i].input_index);
        EXPECT_EQ(a[i].id, i);
        EXPECT_GT(a[i].deadline_us, a[i].arrival_us);
        EXPECT_LT(a[i].endpoint, 3);
        if (i > 0) {
            EXPECT_GE(a[i].arrival_us, a[i - 1].arrival_us);
        }
        (a[i].cls == serve::RequestClass::Low ? any_low : any_high) =
            true;
    }
    EXPECT_TRUE(any_low);
    EXPECT_TRUE(any_high);
}

TEST(Serving, AdmissionWatermarksFormTheBrownoutLadder)
{
    serve::AdmissionConfig ac;
    ac.queue_capacity = 8;
    ac.shrink_watermark = 2;
    ac.shed_watermark = 4;
    serve::AdmissionController ctl(ac);
    using L = serve::BrownoutLevel;
    EXPECT_EQ(ctl.levelFor(0), L::Normal);
    EXPECT_EQ(ctl.levelFor(2), L::ShrunkWindow);
    EXPECT_EQ(ctl.levelFor(4), L::ShedLowClass);
    EXPECT_EQ(ctl.levelFor(8), L::RejectAll);

    serve::Request high;
    high.cls = serve::RequestClass::High;
    high.deadline_us = 1'000.0;
    serve::Request low = high;
    low.cls = serve::RequestClass::Low;

    using D = serve::AdmissionController::Decision;
    EXPECT_EQ(ctl.decide(high, 0, 0.0, 100.0), D::Admit);
    EXPECT_EQ(ctl.decide(low, 5, 0.0, 100.0), D::Shed);
    EXPECT_EQ(ctl.decide(high, 5, 0.0, 100.0), D::Admit)
        << "shedding only hits the Low class";
    EXPECT_EQ(ctl.decide(high, 8, 0.0, 100.0),
              D::RejectQueueFull);
    // Feasibility: est_start + est_service * safety > deadline.
    EXPECT_EQ(ctl.decide(high, 0, 950.0, 100.0),
              D::RejectInfeasible);
}

TEST(Serving, BreakerStateMachineCountsTransitions)
{
    serve::BreakerConfig bc;
    bc.failure_threshold = 2;
    bc.cooldown_us = 100.0;
    bc.close_successes = 2;
    serve::CircuitBreaker brk(bc);
    using S = serve::CircuitBreaker::State;

    EXPECT_TRUE(brk.usePrimary(0.0));
    brk.onPrimaryFailure(0.0);
    EXPECT_EQ(brk.state(), S::Closed) << "one failure is tolerated";
    brk.onPrimaryFailure(1.0);
    EXPECT_EQ(brk.state(), S::Open);
    EXPECT_EQ(brk.trips(), 1u);
    EXPECT_FALSE(brk.usePrimary(50.0)) << "cooling down";
    EXPECT_TRUE(brk.usePrimary(101.0)) << "half-open probe";
    EXPECT_EQ(brk.state(), S::HalfOpen);
    brk.onPrimaryFailure(102.0);
    EXPECT_EQ(brk.state(), S::Open);
    EXPECT_EQ(brk.reopens(), 1u);
    EXPECT_TRUE(brk.usePrimary(203.0));
    brk.onPrimarySuccess();
    EXPECT_EQ(brk.state(), S::HalfOpen)
        << "needs close_successes in a row";
    EXPECT_TRUE(brk.usePrimary(204.0));
    brk.onPrimarySuccess();
    EXPECT_EQ(brk.state(), S::Closed);
    EXPECT_EQ(brk.closes(), 1u);
    // A success streak interrupted by a failure starts over.
    brk.onPrimaryFailure(300.0);
    brk.onPrimaryFailure(301.0);
    EXPECT_EQ(brk.trips(), 2u);
}

TEST(Serving, BatcherDrainsHighClassFirstAndExpiresDead)
{
    serve::BatchPolicy pol;
    pol.max_batch = 8; // backlog stays partial: window governs
    pol.window_us = 100.0;
    serve::Batcher b(pol);

    auto queued = [](std::uint64_t id, serve::RequestClass cls,
                     double deadline, double enq) {
        serve::Queued q;
        q.req.id = id;
        q.req.cls = cls;
        q.req.deadline_us = deadline;
        q.enqueue_us = enq;
        return q;
    };
    b.enqueue(queued(0, serve::RequestClass::Low, 1e6, 10.0));
    b.enqueue(queued(1, serve::RequestClass::High, 50.0, 20.0));
    b.enqueue(queued(2, serve::RequestClass::High, 1e6, 30.0));
    b.enqueue(queued(3, serve::RequestClass::Low, 1e6, 40.0));
    EXPECT_EQ(b.depth(), 4u);

    // Oldest enqueue (10.0) + window = 110; the backoff gate wins
    // when later.
    EXPECT_DOUBLE_EQ(b.readyAt(serve::BrownoutLevel::Normal, 0.0),
                     110.0);
    EXPECT_DOUBLE_EQ(b.readyAt(serve::BrownoutLevel::Normal, 500.0),
                     500.0);

    const auto dead = b.expire(60.0);
    ASSERT_EQ(dead.size(), 1u);
    EXPECT_EQ(dead.front().req.id, 1u);

    const auto batch = b.form(60.0);
    ASSERT_EQ(batch.size(), 3u);
    EXPECT_EQ(batch[0].req.id, 2u) << "High drains before Low";
    EXPECT_EQ(batch[1].req.id, 0u);
    EXPECT_EQ(batch[2].req.id, 3u);
    EXPECT_TRUE(b.empty());
}

} // namespace
