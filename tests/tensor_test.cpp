/** @file Unit tests for the host math kernels, including
 *  finite-difference checks of every backward routine. */
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "tensor/host_math.hpp"
#include "tensor/tensor.hpp"

namespace {

std::vector<float>
randomVec(common::Rng& rng, std::size_t n, float scale = 1.0f)
{
    std::vector<float> v(n);
    for (auto& x : v)
        x = rng.nextFloat(-scale, scale);
    return v;
}

TEST(Shape, BasicProperties)
{
    tensor::Shape v(5);
    EXPECT_TRUE(v.isVector());
    EXPECT_EQ(v.size(), 5u);
    tensor::Shape m(3, 4);
    EXPECT_FALSE(m.isVector());
    EXPECT_EQ(m.size(), 12u);
    EXPECT_EQ(m.str(), "3x4");
    EXPECT_TRUE(tensor::Shape(1).isScalar());
    EXPECT_EQ(v, tensor::Shape(5));
    EXPECT_NE(v, m);
}

TEST(HostMath, GemvMatchesManualComputation)
{
    // W = [[1, 2], [3, 4], [5, 6]], x = [10, 100]
    const std::vector<float> w{1, 2, 3, 4, 5, 6};
    const std::vector<float> x{10, 100};
    std::vector<float> y(3);
    tensor::gemv(w.data(), x.data(), y.data(), 3, 2);
    EXPECT_FLOAT_EQ(y[0], 210.0f);
    EXPECT_FLOAT_EQ(y[1], 430.0f);
    EXPECT_FLOAT_EQ(y[2], 650.0f);
}

TEST(HostMath, GemvRowsComputesOnlyRequestedRows)
{
    const std::vector<float> w{1, 2, 3, 4, 5, 6};
    const std::vector<float> x{1, 1};
    std::vector<float> y(3, -1.0f);
    tensor::gemvRows(w.data(), x.data(), y.data(), 1, 2, 2);
    EXPECT_FLOAT_EQ(y[0], -1.0f) << "row 0 untouched";
    EXPECT_FLOAT_EQ(y[1], 7.0f);
    EXPECT_FLOAT_EQ(y[2], -1.0f) << "row 2 untouched";
}

TEST(HostMath, RowSlicesComposeToFullGemv)
{
    common::Rng rng(3);
    const std::size_t rows = 17, cols = 13;
    const auto w = randomVec(rng, rows * cols);
    const auto x = randomVec(rng, cols);
    std::vector<float> whole(rows), pieces(rows);
    tensor::gemv(w.data(), x.data(), whole.data(), rows, cols);
    // Compute in three arbitrary row slices, as the VPPs do.
    tensor::gemvRows(w.data(), x.data(), pieces.data(), 0, 5, cols);
    tensor::gemvRows(w.data(), x.data(), pieces.data(), 5, 11, cols);
    tensor::gemvRows(w.data(), x.data(), pieces.data(), 11, rows,
                     cols);
    for (std::size_t r = 0; r < rows; ++r)
        EXPECT_FLOAT_EQ(pieces[r], whole[r]);
}

TEST(HostMath, TransposedGemvIsGradientOfGemv)
{
    // Check <W x, dy> == <x, W^T dy> (adjoint identity).
    common::Rng rng(5);
    const std::size_t rows = 9, cols = 7;
    const auto w = randomVec(rng, rows * cols);
    const auto x = randomVec(rng, cols);
    const auto dy = randomVec(rng, rows);
    std::vector<float> y(rows), dx(cols, 0.0f);
    tensor::gemv(w.data(), x.data(), y.data(), rows, cols);
    tensor::gemvTransposedAccum(w.data(), dy.data(), dx.data(), rows,
                                cols);
    double lhs = 0.0, rhs = 0.0;
    for (std::size_t r = 0; r < rows; ++r)
        lhs += static_cast<double>(y[r]) * dy[r];
    for (std::size_t c = 0; c < cols; ++c)
        rhs += static_cast<double>(x[c]) * dx[c];
    EXPECT_NEAR(lhs, rhs, 1e-4);
}

TEST(HostMath, OuterAccumBuildsRankOneUpdate)
{
    const std::vector<float> dy{2, 3};
    const std::vector<float> x{10, 20, 30};
    std::vector<float> dw(6, 1.0f);
    tensor::outerAccum(dw.data(), dy.data(), x.data(), 2, 3);
    EXPECT_FLOAT_EQ(dw[0], 21.0f);
    EXPECT_FLOAT_EQ(dw[5], 91.0f);
}

TEST(HostMath, GemmAccumAggregatesStagedOuterProducts)
{
    // The GEMM fallback must equal the sum of per-pair outer
    // products (Section III-C2).
    common::Rng rng(7);
    const std::size_t m = 6, n = 4, k = 5;
    std::vector<float> dys, xs;
    std::vector<float> ref(m * n, 0.0f), gemm(m * n, 0.0f);
    for (std::size_t i = 0; i < k; ++i) {
        const auto dy = randomVec(rng, m);
        const auto x = randomVec(rng, n);
        tensor::outerAccum(ref.data(), dy.data(), x.data(), m, n);
        dys.insert(dys.end(), dy.begin(), dy.end());
        xs.insert(xs.end(), x.begin(), x.end());
    }
    tensor::gemmAccumABt(gemm.data(), dys.data(), xs.data(), m, n, k);
    for (std::size_t i = 0; i < m * n; ++i)
        EXPECT_NEAR(gemm[i], ref[i], 1e-4);
}

/** Finite-difference check of an elementwise activation backward. */
struct ActivationCase
{
    const char* name;
    void (*fwd)(const float*, float*, std::size_t);
    void (*bwd)(const float*, const float*, float*, std::size_t);
};

class ActivationGradientTest
    : public testing::TestWithParam<ActivationCase>
{
};

TEST_P(ActivationGradientTest, MatchesFiniteDifferences)
{
    const auto& c = GetParam();
    common::Rng rng(11);
    const std::size_t n = 16;
    auto in = randomVec(rng, n, 0.9f);
    const auto dout = randomVec(rng, n);

    std::vector<float> out(n), din(n, 0.0f);
    c.fwd(in.data(), out.data(), n);
    c.bwd(out.data(), dout.data(), din.data(), n);

    const float eps = 1e-3f;
    for (std::size_t i = 0; i < n; ++i) {
        // Avoid the relu kink.
        if (std::abs(in[i]) < 2 * eps)
            continue;
        auto perturbed = in;
        perturbed[i] += eps;
        std::vector<float> out_p(n);
        c.fwd(perturbed.data(), out_p.data(), n);
        perturbed[i] -= 2 * eps;
        std::vector<float> out_m(n);
        c.fwd(perturbed.data(), out_m.data(), n);
        const float fd =
            (out_p[i] - out_m[i]) / (2 * eps) * dout[i];
        EXPECT_NEAR(din[i], fd, 5e-3)
            << c.name << " gradient at index " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Activations, ActivationGradientTest,
    testing::Values(
        ActivationCase{"tanh", tensor::tanhForward,
                       tensor::tanhBackward},
        ActivationCase{"sigmoid", tensor::sigmoidForward,
                       tensor::sigmoidBackward},
        ActivationCase{"relu", tensor::reluForward,
                       tensor::reluBackward}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(HostMath, PickNegLogSoftmaxIsAProperLoss)
{
    const std::vector<float> logits{1.0f, 2.0f, 0.5f};
    std::vector<float> probs(3);
    const float loss =
        tensor::pickNegLogSoftmax(logits.data(), 1, probs.data(), 3);
    float sum = 0.0f;
    for (float p : probs) {
        EXPECT_GT(p, 0.0f);
        sum += p;
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5);
    EXPECT_NEAR(loss, -std::log(probs[1]), 1e-5);
    // The gold class has the largest logit here, so loss < log(3).
    EXPECT_LT(loss, std::log(3.0f));
}

TEST(HostMath, PickNegLogSoftmaxBackwardMatchesFiniteDifferences)
{
    common::Rng rng(13);
    const std::size_t n = 5;
    auto logits = randomVec(rng, n);
    std::vector<float> probs(n);
    tensor::pickNegLogSoftmax(logits.data(), 2, probs.data(), n);
    std::vector<float> dlogits(n, 0.0f);
    tensor::pickNegLogSoftmaxBackward(probs.data(), 2, 1.0f,
                                      dlogits.data(), n);
    const float eps = 1e-3f;
    for (std::size_t i = 0; i < n; ++i) {
        auto p = logits;
        std::vector<float> scratch(n);
        p[i] += eps;
        const float lp =
            tensor::pickNegLogSoftmax(p.data(), 2, scratch.data(), n);
        p[i] -= 2 * eps;
        const float lm =
            tensor::pickNegLogSoftmax(p.data(), 2, scratch.data(), n);
        EXPECT_NEAR(dlogits[i], (lp - lm) / (2 * eps), 5e-3);
    }
}

TEST(HostMath, SgdUpdateAppliesDecayAndClearsGradient)
{
    std::vector<float> p{1.0f, -2.0f};
    std::vector<float> g{0.5f, 0.5f};
    tensor::sgdUpdate(p.data(), g.data(), 2, 0.1f, 0.01f);
    EXPECT_NEAR(p[0], 1.0f - 0.1f * (0.5f + 0.01f * 1.0f), 1e-6);
    EXPECT_NEAR(p[1], -2.0f - 0.1f * (0.5f + 0.01f * -2.0f), 1e-6);
    EXPECT_EQ(g[0], 0.0f);
    EXPECT_EQ(g[1], 0.0f);
}

TEST(HostMath, AddNAndAccum)
{
    const std::vector<float> a{1, 2}, b{10, 20}, c{100, 200};
    const float* ins[3] = {a.data(), b.data(), c.data()};
    std::vector<float> out(2);
    tensor::addN(ins, 3, out.data(), 2);
    EXPECT_FLOAT_EQ(out[0], 111.0f);
    tensor::accum(out.data(), a.data(), 2);
    EXPECT_FLOAT_EQ(out[0], 112.0f);
}

TEST(TensorRef, ViewsIntoPool)
{
    gpusim::DeviceMemory mem(64);
    const auto off = mem.allocate(8, gpusim::MemSpace::Activations);
    tensor::TensorRef ref(off, tensor::Shape(8));
    EXPECT_TRUE(ref.valid());
    EXPECT_DOUBLE_EQ(ref.bytes(), 32.0);
    ref.data(mem)[2] = 42.0f;
    EXPECT_EQ(mem.data(off)[2], 42.0f);
    EXPECT_FALSE(tensor::TensorRef{}.valid());
}

} // namespace
