/**
 * @file
 * JSON-escaping audit for the observability exporters. Names that
 * reach the Chrome-trace and metrics JSON come from configuration
 * the runtime does not control (endpoint names, replica names,
 * model tags), so the shared escaper must turn *any* byte sequence
 * -- embedded quotes, backslashes, control characters, DEL, and
 * non-ASCII bytes -- into pure-ASCII, structurally valid JSON. A
 * minimal JSON scanner below checks structural validity without
 * pulling in a parser dependency.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/chrome_trace.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

/** Hostile name corpus: every escaping class represented. */
std::vector<std::string>
hostileNames()
{
    std::vector<std::string> names = {
        "plain",
        "with \"quotes\" inside",
        "back\\slash\\path",
        "newline\nand\rreturn",
        "tab\tand\ffeed\band bell\x07",
        std::string("embedded\0nul", 12),
        "del\x7f char",
        "latin1 caf\xe9",
        "utf8 caf\xc3\xa9 \xe2\x82\xac",
        "all controls: \x01\x02\x03\x1e\x1f",
        "</script><!--injection-->",
    };
    std::string every_byte;
    for (int b = 1; b < 256; ++b)
        every_byte.push_back(static_cast<char>(b));
    names.push_back(every_byte);
    return names;
}

/**
 * Structural check of one JSON string literal starting at s[i]
 * (which must be '"'). @return the index just past the closing
 * quote, or npos on malformed content.
 */
std::size_t
scanJsonString(const std::string& s, std::size_t i)
{
    if (i >= s.size() || s[i] != '"')
        return std::string::npos;
    ++i;
    while (i < s.size()) {
        const unsigned char c = static_cast<unsigned char>(s[i]);
        if (c == '"')
            return i + 1;
        if (c < 0x20 || c >= 0x7f)
            return std::string::npos; // raw control or non-ASCII
        if (c == '\\') {
            if (i + 1 >= s.size())
                return std::string::npos;
            const char e = s[i + 1];
            if (e == 'u') {
                if (i + 5 >= s.size())
                    return std::string::npos;
                for (int k = 2; k <= 5; ++k)
                    if (!isxdigit(
                            static_cast<unsigned char>(s[i + k])))
                        return std::string::npos;
                i += 6;
                continue;
            }
            if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                e != 'f' && e != 'n' && e != 'r' && e != 't')
                return std::string::npos;
            i += 2;
            continue;
        }
        ++i;
    }
    return std::string::npos; // unterminated
}

/** Whole-document audit: every string literal well-formed, every
 *  byte outside string literals plain ASCII, braces balanced. */
void
expectStructurallyValidJson(const std::string& doc,
                            const std::string& what)
{
    long depth = 0;
    std::size_t i = 0;
    while (i < doc.size()) {
        const unsigned char c = static_cast<unsigned char>(doc[i]);
        if (c == '"') {
            const std::size_t end = scanJsonString(doc, i);
            ASSERT_NE(end, std::string::npos)
                << what << ": malformed string literal at byte " << i;
            i = end;
            continue;
        }
        ASSERT_LT(c, 0x7fu)
            << what << ": non-ASCII byte outside a string at " << i;
        ASSERT_TRUE(c >= 0x20 || c == '\n' || c == '\r' || c == '\t')
            << what << ": control byte outside a string at " << i;
        if (c == '{' || c == '[')
            ++depth;
        if (c == '}' || c == ']')
            --depth;
        ASSERT_GE(depth, 0) << what << ": unbalanced at byte " << i;
        ++i;
    }
    EXPECT_EQ(depth, 0) << what << ": unbalanced document";
}

TEST(JsonEscape, QuotedOutputIsAlwaysValidAndPureAscii)
{
    for (const std::string& name : hostileNames()) {
        const std::string q = obs::jsonQuoted(name);
        EXPECT_EQ(scanJsonString(q, 0), q.size())
            << "escaper produced a malformed literal";
    }
}

TEST(JsonEscape, ShortEscapesAndUnicodeForms)
{
    EXPECT_EQ(obs::jsonQuoted("a\"b"), "\"a\\\"b\"");
    EXPECT_EQ(obs::jsonQuoted("a\\b"), "\"a\\\\b\"");
    EXPECT_EQ(obs::jsonQuoted("\n\r\t\b\f"),
              "\"\\n\\r\\t\\b\\f\"");
    EXPECT_EQ(obs::jsonQuoted(std::string("\x00", 1)), "\"\\u0000\"");
    EXPECT_EQ(obs::jsonQuoted("\x1f"), "\"\\u001f\"");
    EXPECT_EQ(obs::jsonQuoted("\x7f"), "\"\\u007f\"");
    EXPECT_EQ(obs::jsonQuoted("\xe9"), "\"\\u00e9\"")
        << "bytes >= 0x80 are escaped as Latin-1 code points";
}

TEST(JsonEscape, EscapingIsDeterministic)
{
    for (const std::string& name : hostileNames())
        EXPECT_EQ(obs::jsonQuoted(name), obs::jsonQuoted(name));
}

TEST(JsonEscape, ChromeTraceSurvivesHostileNames)
{
    obs::Tracer tracer;
    const auto names = hostileNames();
    double ts = 1.0;
    for (const std::string& name : names) {
        tracer.instant(obs::kLaneHost, name.c_str(), name.c_str(),
                       ts, 7);
        tracer.complete(obs::kLaneFleet, "fleet", name.c_str(),
                        ts + 1.0, 2.0, 8);
        ts += 10.0;
    }
    const std::string doc = chromeTraceJson(tracer);
    expectStructurallyValidJson(doc, "chrome trace");

    // The canonical text rendering must also survive (it is the
    // bitwise-comparison medium for the determinism tests).
    const std::string text = tracer.canonicalText();
    EXPECT_FALSE(text.empty());
}

TEST(JsonEscape, MetricsRegistrySurvivesHostileNames)
{
    obs::MetricsRegistry mx;
    for (const std::string& name : hostileNames()) {
        mx.counter("counter." + name).add(3);
        mx.gauge("gauge." + name).add(1.5);
        mx.histogram("hist." + name).observe(2.0);
    }
    expectStructurallyValidJson(mx.json(), "metrics registry");
}

} // namespace
