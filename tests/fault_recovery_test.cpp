/**
 * @file
 * The robustness headline: under a seeded *transient* fault plan --
 * detected script/weight ECC errors, failed launches, hung VPPs,
 * allocation failures, corrupted loss readbacks -- training completes
 * with final parameters bitwise identical to a fault-free run,
 * because every injected fault is a detected fault and every recovery
 * is retry/rollback/replay of deterministic work. Also covered:
 * recovery counters match the injector's log category for category,
 * permanent faults degrade gracefully to the GEMM-fallback kernel,
 * checkpointed training replays deterministically, the NaN guard
 * contains poisoned batches, and the env-var plumbing installs
 * injectors.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "common/rng.hpp"
#include "data/ner_corpus.hpp"
#include "data/treebank.hpp"
#include "data/vocab.hpp"
#include "models/bilstm_tagger.hpp"
#include "models/rvnn.hpp"
#include "models/td_lstm.hpp"
#include "models/tree_lstm.hpp"
#include "serve/arrival.hpp"
#include "serve/server.hpp"
#include "train/data_parallel.hpp"
#include "train/harness.hpp"
#include "vpps/handle.hpp"

namespace {

struct Factory
{
    gpusim::Device device;
    common::Rng data_rng{121};
    data::Vocab vocab{300, 10000};
    data::Treebank bank{vocab, 8, data_rng, 7.0, 4, 10};
    data::NerCorpus corpus{vocab, 8, data_rng, 7.0, 4, 10};
    common::Rng param_rng{122};

    Factory() : device(gpusim::DeviceSpec{}, 48u << 20)
    {
        // These tests script their fault plans explicitly; an inherited
        // soak environment (tools/check.sh) must not add faults to the
        // "clean" reference runs.
        unsetenv("VPPS_FAULT_RATE");
        unsetenv("VPPS_FAULT_SEED");
    }

    std::unique_ptr<models::BenchmarkModel>
    make(const std::string& app)
    {
        if (app == "Tree-LSTM")
            return std::make_unique<models::TreeLstmModel>(
                bank, vocab, 16, 32, device, param_rng);
        if (app == "BiLSTM")
            return std::make_unique<models::BiLstmTagger>(
                corpus, vocab, 16, 24, 16, device, param_rng);
        if (app == "TD-LSTM")
            return std::make_unique<models::TdLstmModel>(
                bank, vocab, 32, device, param_rng);
        return std::make_unique<models::RvnnModel>(bank, vocab, 32,
                                                   device, param_rng);
    }
};

/** Recovery-friendly knobs: fixed rpw (so the clean and faulty runs
 *  execute identical kernels) and a relaunch budget deep enough that
 *  a transient plan never has to degrade the specialization. */
vpps::VppsOptions
recoveryOptions()
{
    vpps::VppsOptions opts;
    opts.rpw = 2;
    opts.async = false;
    opts.max_relaunch_attempts = 8;
    return opts;
}

/** All parameter values as raw bits, for bitwise comparison. */
std::vector<float>
paramBits(models::BenchmarkModel& bm, const gpusim::Device& device)
{
    return train::captureCheckpoint(bm.model(), device, 0).params;
}

void
expectBitwiseEqual(const std::vector<float>& a,
                   const std::vector<float>& b, const std::string& what)
{
    ASSERT_EQ(a.size(), b.size()) << what;
    EXPECT_EQ(
        std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0)
        << what << ": parameters diverged";
}

void
expectCountersMatchInjectorLog(const vpps::RecoveryStats& rec,
                               const gpusim::FaultLog& log)
{
    EXPECT_EQ(rec.script_retransmits, log.script_ecc);
    EXPECT_EQ(rec.weight_reloads, log.weight_ecc);
    EXPECT_EQ(rec.relaunches, log.launch_failures);
    EXPECT_EQ(rec.hang_recoveries, log.hangs);
    EXPECT_EQ(rec.alloc_retries, log.alloc_failures);
    EXPECT_EQ(rec.loss_retries, log.loss_ecc);
}

float
trainBatches(vpps::Handle& handle, models::BenchmarkModel& bm,
             int batches)
{
    float loss = 0.0f;
    for (int step = 0; step < batches; ++step) {
        graph::ComputationGraph cg;
        loss = handle.fb(
            bm.model(), cg,
            train::buildSuperGraph(
                bm, cg, static_cast<std::size_t>(step) * 2, 2));
    }
    return loss;
}

TEST(FaultRecovery, TransientFaultsAreBitwiseTransparent)
{
    for (const char* app :
         {"Tree-LSTM", "BiLSTM", "TD-LSTM", "RvNN"}) {
        Factory clean_f, faulty_f;
        auto cm = clean_f.make(app);
        auto fm = faulty_f.make(app);

        const auto opts = recoveryOptions();
        vpps::Handle clean(cm->model(), clean_f.device, opts);
        faulty_f.device.installFaults(
            gpusim::FaultPlan::uniform(0.15, 33));
        vpps::Handle faulty(fm->model(), faulty_f.device, opts);

        for (int step = 0; step < 6; ++step) {
            graph::ComputationGraph cg_c;
            const float lc = clean.fb(
                cm->model(), cg_c,
                train::buildSuperGraph(
                    *cm, cg_c, static_cast<std::size_t>(step) * 2, 2));
            graph::ComputationGraph cg_f;
            const float lf = faulty.fb(
                fm->model(), cg_f,
                train::buildSuperGraph(
                    *fm, cg_f, static_cast<std::size_t>(step) * 2, 2));
            ASSERT_TRUE(std::isfinite(lf)) << app;
            // Recovered batches reproduce the loss bit for bit.
            EXPECT_EQ(lc, lf) << app << " step " << step;
        }

        expectBitwiseEqual(paramBits(*cm, clean_f.device),
                           paramBits(*fm, faulty_f.device), app);

        const auto& rec = faulty.stats().recovery;
        const auto& log = faulty_f.device.faults()->injected();
        EXPECT_GT(log.total(), 0u)
            << app << ": the plan injected nothing -- raise the rate";
        expectCountersMatchInjectorLog(rec, log);
        EXPECT_EQ(rec.degradations, 0u)
            << app << ": transient faults must not degrade";
        EXPECT_EQ(clean.stats().recovery.totalRecoveries(), 0u);
        // Recovery costs simulated time, never correctness.
        EXPECT_GT(faulty.stats().wall_us, clean.stats().wall_us);
        EXPECT_GT(rec.recovery_us, 0.0);
    }
}

TEST(FaultRecovery, FaultyRunMatchesAtEightThreads)
{
    Factory clean_f, faulty1_f, faulty8_f;
    auto cm = clean_f.make("Tree-LSTM");
    auto f1 = faulty1_f.make("Tree-LSTM");
    auto f8 = faulty8_f.make("Tree-LSTM");

    auto opts = recoveryOptions();
    opts.host_threads = 1;
    vpps::Handle clean(cm->model(), clean_f.device, opts);
    faulty1_f.device.installFaults(
        gpusim::FaultPlan::uniform(0.2, 91));
    vpps::Handle faulty1(f1->model(), faulty1_f.device, opts);
    opts.host_threads = 8;
    faulty8_f.device.installFaults(
        gpusim::FaultPlan::uniform(0.2, 91));
    vpps::Handle faulty8(f8->model(), faulty8_f.device, opts);

    trainBatches(clean, *cm, 4);
    trainBatches(faulty1, *f1, 4);
    trainBatches(faulty8, *f8, 4);

    // Fault draws all happen in serial host code, so the injected
    // sequence -- and everything downstream of it -- is identical at
    // every host thread count.
    EXPECT_EQ(faulty1_f.device.faults()->injected().total(),
              faulty8_f.device.faults()->injected().total());
    expectBitwiseEqual(paramBits(*f1, faulty1_f.device),
                       paramBits(*f8, faulty8_f.device),
                       "threads 1 vs 8 under faults");
    expectBitwiseEqual(paramBits(*cm, clean_f.device),
                       paramBits(*f8, faulty8_f.device),
                       "clean vs faulty at 8 threads");
}

TEST(FaultRecovery, PermanentLaunchFaultsDegradeToFallback)
{
    Factory f;
    auto m = f.make("Tree-LSTM");
    gpusim::FaultPlan plan;
    plan.permanent_launch_faults = true;
    f.device.installFaults(plan);

    vpps::VppsOptions opts;
    opts.rpw = 2;
    opts.async = false;
    vpps::Handle handle(m->model(), f.device, opts);
    ASSERT_TRUE(handle.kernel().plan.gradientsCached())
        << "test premise: the preferred kernel caches gradients";

    const float loss = trainBatches(handle, *m, 2);
    EXPECT_TRUE(std::isfinite(loss));

    // The gradient-cached kernel can never launch; after the relaunch
    // budget the handle must settle on the uncached-gradient fallback
    // and still make training progress.
    EXPECT_FALSE(handle.kernel().plan.gradientsCached());
    const auto& rec = handle.stats().recovery;
    EXPECT_GE(rec.degradations, 1u);
    EXPECT_GE(rec.relaunches,
              static_cast<std::uint64_t>(opts.max_relaunch_attempts));
    EXPECT_EQ(rec.relaunches,
              f.device.faults()->injected().launch_failures);
}

TEST(FaultRecovery, CheckpointRestoreReplaysDeterministically)
{
    Factory clean_f, faulty_f;
    auto cm = clean_f.make("RvNN");
    auto fm = faulty_f.make("RvNN");

    auto opts = recoveryOptions();
    vpps::Handle clean(cm->model(), clean_f.device, opts);
    train::measureVpps(clean, *cm, 12, 2);

    // A brutal plan: 70% of script transfers corrupted with only one
    // retransmit allowed, so whole batches fail out of fbTry() and
    // the harness must restore checkpoints and replay.
    gpusim::FaultPlan plan;
    plan.seed = 13;
    plan.script_ecc_rate = 0.7;
    opts.max_retransmits = 1;
    faulty_f.device.installFaults(plan);
    vpps::Handle faulty(fm->model(), faulty_f.device, opts);

    train::RecoveryOptions ropts;
    ropts.checkpoint_every_batches = 2;
    ropts.max_restores = 200;
    const auto rep = train::measureVppsRecoverable(
        faulty, faulty_f.device, *fm, 12, 2, ropts);

    EXPECT_TRUE(rep.completed) << rep.last_error;
    EXPECT_GT(rep.restores, 0u)
        << "the plan never failed a batch -- raise the rate";
    EXPECT_GT(rep.replayed_batches + rep.restores, 0u);
    EXPECT_GE(rep.checkpoints, 2u);
    EXPECT_NE(rep.last_error.find("ecc_script"), std::string::npos)
        << rep.last_error;

    expectBitwiseEqual(paramBits(*cm, clean_f.device),
                       paramBits(*fm, faulty_f.device),
                       "checkpoint-recovered run");
}

TEST(FaultRecovery, NanGuardSkipsPoisonedBatches)
{
    Factory f;
    auto m = f.make("Tree-LSTM");
    vpps::Handle handle(m->model(), f.device, recoveryOptions());

    // Poison one recurrent weight: every batch's loss becomes NaN.
    graph::Model& model = m->model();
    const graph::ParamId w = model.weightMatrices().front();
    f.device.memory().data(model.param(w).value)[0] =
        std::numeric_limits<float>::quiet_NaN();
    const auto poisoned = paramBits(*m, f.device);

    trainBatches(handle, *m, 2);

    const auto& rec = handle.stats().recovery;
    EXPECT_EQ(rec.skipped_batches, 2u);
    EXPECT_EQ(rec.rollbacks, 2u);
    EXPECT_EQ(handle.stats().batches, 2u);
    // The rollback restored the exact pre-batch parameters: the NaN
    // stayed where it was put and spread no further.
    expectBitwiseEqual(poisoned, paramBits(*m, f.device),
                       "NaN-guarded parameters");
}

TEST(FaultRecovery, ServingPathCountersReconcileUnderFaults)
{
    // The serving loop drives batches through the same fbTry ladder
    // as training; with a transient plan and 8-thread host
    // interpretation, the server's request accounting and the
    // handle's recovery counters must both reconcile exactly against
    // the injector's log -- no fault handled twice, none dropped.
    Factory f;
    auto m = f.make("Tree-LSTM");
    f.device.installFaults(gpusim::FaultPlan::uniform(0.15, 57));
    auto opts = recoveryOptions();
    opts.host_threads = 8;
    vpps::Handle handle(m->model(), f.device, opts);

    serve::ServerConfig cfg;
    serve::Server server(f.device, {{"treelstm", m.get(), &handle}},
                         cfg);
    server.calibrate();
    const double batch_us =
        server.serviceUs(0, cfg.batch.max_batch);

    serve::ArrivalConfig ac;
    ac.rate_per_sec = 0.6 * server.capacityPerSec();
    ac.count = 40;
    ac.deadline_slack_us = 60.0 * batch_us;
    ac.low_deadline_slack_us = 60.0 * batch_us;
    ac.seed = 19;
    server.run(serve::generateOpenLoopArrivals(
        ac, server.nowUs() + batch_us, m->datasetSize()));

    const auto& c = server.counters();
    EXPECT_TRUE(c.reconciled());
    EXPECT_GT(c.completed, 0u);
    EXPECT_GT(c.batches, 0u);

    const auto& log = f.device.faults()->injected();
    EXPECT_GT(log.total(), 0u)
        << "the plan injected nothing -- raise the rate";
    expectCountersMatchInjectorLog(handle.stats().recovery, log);
}

TEST(FaultRecovery, EnvAndOptionPlumbingInstallInjectors)
{
    {
        Factory f; // clears any inherited fault env first
        auto m = f.make("RvNN");
        setenv("VPPS_FAULT_RATE", "0.1", 1);
        setenv("VPPS_FAULT_SEED", "7", 1);
        vpps::Handle handle(m->model(), f.device, recoveryOptions());
        ASSERT_NE(f.device.faults(), nullptr);
        EXPECT_EQ(f.device.faults()->plan().seed, 7u);
        EXPECT_DOUBLE_EQ(f.device.faults()->plan().script_ecc_rate,
                         0.1);
    }
    unsetenv("VPPS_FAULT_RATE");
    unsetenv("VPPS_FAULT_SEED");

    {
        Factory f;
        auto m = f.make("RvNN");
        auto opts = recoveryOptions();
        opts.fault_rate = 0.05;
        opts.fault_seed = 21;
        vpps::Handle handle(m->model(), f.device, opts);
        ASSERT_NE(f.device.faults(), nullptr);
        EXPECT_EQ(f.device.faults()->plan().seed, 21u);
        EXPECT_DOUBLE_EQ(f.device.faults()->plan().hang_rate, 0.05);
    }

    {
        // No env, no option: fault-free.
        Factory f;
        auto m = f.make("RvNN");
        vpps::Handle handle(m->model(), f.device, recoveryOptions());
        EXPECT_EQ(f.device.faults(), nullptr);
    }
}

/** One data-parallel replica backed by the seeded Factory, with an
 *  optional fault plan installed before the driver builds handles. */
class DpReplica : public train::ReplicaContext
{
  public:
    explicit DpReplica(const gpusim::FaultPlan* plan = nullptr)
        : bm_(f_.make("Tree-LSTM"))
    {
        if (plan) f_.device.installFaults(*plan);
    }

    gpusim::Device& device() override { return f_.device; }
    models::BenchmarkModel& bench() override { return *bm_; }

  private:
    Factory f_;
    std::unique_ptr<models::BenchmarkModel> bm_;
};

train::DataParallelOptions
dpOptions(std::size_t replicas)
{
    train::DataParallelOptions opts;
    opts.replicas = replicas;
    opts.microbatches = 8;
    opts.microbatch_size = 2;
    opts.steps = 3;
    opts.topology =
        gpusim::Topology::uniform(8, gpusim::LinkType::NVLink);
    opts.vpps = recoveryOptions();
    return opts;
}

/**
 * Fault layering (ISSUE 9): PR-2 transient faults injected into a
 * data-parallel run recover bitwise -- losses and final parameters
 * match the fault-free run exactly -- because each microbatch's
 * recovery happens inside fbGradTry before its gradient enters the
 * canonical reduction, and fault draws never consult the collective
 * layer. A timing-only device stall layered on top must likewise
 * leave the arithmetic untouched while costing simulated time.
 */
TEST(FaultRecovery, DataParallelTransientFaultsAreBitwiseTransparent)
{
    auto clean = train::trainDataParallel(
        [](std::size_t) { return std::make_unique<DpReplica>(); },
        dpOptions(2));
    ASSERT_TRUE(clean.ok()) << clean.status().toString();
    ASSERT_TRUE(clean.value().completed)
        << clean.value().status.toString();
    EXPECT_EQ(clean.value().recoveries, 0u);

    // Per-replica transient plans (distinct seeds), plus a transient
    // whole-device stall on replica 1.
    auto faulty = train::trainDataParallel(
        [](std::size_t r) {
            gpusim::FaultPlan plan =
                gpusim::FaultPlan::uniform(0.1, 40 + r);
            if (r == 1)
            {
                plan.stall_at_us = 200.0;
                plan.stall_duration_us = 5'000.0;
            }
            return std::make_unique<DpReplica>(&plan);
        },
        dpOptions(2));
    ASSERT_TRUE(faulty.ok()) << faulty.status().toString();
    const train::DataParallelReport& rep = faulty.value();
    ASSERT_TRUE(rep.completed) << rep.status.toString();
    EXPECT_GT(rep.recoveries, 0u)
        << "the plan injected nothing -- raise the rate";

    expectBitwiseEqual(clean.value().losses, rep.losses,
                       "data-parallel faulty losses");
    expectBitwiseEqual(clean.value().final_params, rep.final_params,
                       "data-parallel faulty params");
    EXPECT_TRUE(rep.replicas_identical);
    // Recovery and the stall cost simulated time, never correctness.
    EXPECT_GT(rep.total_us, clean.value().total_us);
}

/** A wedged replica ends the run with a structured DeviceLost error
 *  (completed == false), never a panic or a silent wrong answer. */
TEST(FaultRecovery, DataParallelDeviceLossSurfacesStructured)
{
    auto run = train::trainDataParallel(
        [](std::size_t r) {
            gpusim::FaultPlan plan;
            if (r == 1) plan.wedge_at_us = 100.0;
            return std::make_unique<DpReplica>(&plan);
        },
        dpOptions(2));
    ASSERT_TRUE(run.ok()) << run.status().toString();
    const train::DataParallelReport& rep = run.value();
    EXPECT_FALSE(rep.completed);
    EXPECT_EQ(rep.status.code(), common::ErrorCode::DeviceLost);
    EXPECT_LT(rep.steps_done, 3u);
}

} // namespace
