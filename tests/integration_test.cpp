/**
 * @file
 * Whole-system integration tests: real training runs must converge
 * (loss decreases) under every execution strategy, across several of
 * the benchmark applications, and the simulator's accounting must be
 * internally consistent (e.g. VPPS weight traffic == one weight load
 * per batch).
 */
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "data/ner_corpus.hpp"
#include "data/treebank.hpp"
#include "data/vocab.hpp"
#include "exec/agenda_batch_executor.hpp"
#include "exec/depth_batch_executor.hpp"
#include "exec/fold_executor.hpp"
#include "exec/naive_executor.hpp"
#include "models/bilstm_tagger.hpp"
#include "models/rvnn.hpp"
#include "models/tree_lstm.hpp"
#include "train/harness.hpp"
#include "train/sgd.hpp"
#include "vpps/handle.hpp"

namespace {

constexpr std::size_t kPool = 48u << 20;

/** Train a few epochs through VPPS; mean loss must drop. */
TEST(Integration, TreeLstmConvergesUnderVpps)
{
    gpusim::Device device(gpusim::DeviceSpec{}, kPool);
    common::Rng rng(11);
    data::Vocab vocab(300);
    data::Treebank bank(vocab, 16, rng, 8.0, 4, 12);
    common::Rng prng(1);
    models::TreeLstmModel model(bank, vocab, 32, 48, device, prng);
    train::SgdConfig{0.2f, 0.0f}.apply(model.model());

    vpps::VppsOptions opts;
    opts.rpw = 2;
    opts.async = false;
    vpps::Handle handle(model.model(), device, opts);

    constexpr int kEpochs = 25;
    train::LossTracker first_epoch, last_epoch;
    const std::size_t batch = 4;
    for (int epoch = 0; epoch < kEpochs; ++epoch) {
        for (std::size_t i = 0; i < bank.size(); i += batch) {
            graph::ComputationGraph cg;
            auto loss = train::buildSuperGraph(model, cg, i, batch);
            const float l = handle.fb(model.model(), cg, loss);
            if (epoch == 0)
                first_epoch.add(l);
            if (epoch == kEpochs - 1)
                last_epoch.add(l);
        }
    }
    EXPECT_LT(last_epoch.mean(), 0.5f * first_epoch.mean())
        << "training through VPPS failed to reduce the loss";
}

TEST(Integration, BiLstmConvergesUnderAgendaBatching)
{
    gpusim::Device device(gpusim::DeviceSpec{}, kPool);
    common::Rng rng(12);
    data::Vocab vocab(300);
    data::NerCorpus corpus(vocab, 12, rng, 8.0, 4, 12);
    common::Rng prng(2);
    models::BiLstmTagger model(corpus, vocab, 32, 32, 32, device,
                               prng);
    train::SgdConfig{0.1f, 0.0f}.apply(model.model());

    exec::AgendaBatchExecutor executor(device, gpusim::HostSpec{});
    train::LossTracker first_epoch, last_epoch;
    for (int epoch = 0; epoch < 6; ++epoch) {
        for (std::size_t i = 0; i < corpus.size(); i += 4) {
            graph::ComputationGraph cg;
            auto loss = train::buildSuperGraph(model, cg, i, 4);
            const float l =
                executor.trainBatch(model.model(), cg, loss);
            if (epoch == 0)
                first_epoch.add(l);
            if (epoch == 5)
                last_epoch.add(l);
        }
    }
    EXPECT_LT(last_epoch.mean(), 0.8f * first_epoch.mean());
}

/** VPPS loads each weight matrix exactly once per batch (the Table I
 *  claim), independent of how many times the batch uses it. */
TEST(Integration, VppsWeightTrafficIsOneLoadPerBatch)
{
    gpusim::Device device(gpusim::DeviceSpec{}, kPool);
    common::Rng rng(13);
    data::Vocab vocab(300);
    data::Treebank bank(vocab, 8, rng, 10.0, 6, 14);
    common::Rng prng(3);
    models::TreeLstmModel model(bank, vocab, 32, 48, device, prng);

    vpps::VppsOptions opts;
    opts.rpw = 2;
    opts.async = false;
    vpps::Handle handle(model.model(), device, opts);

    device.traffic().reset();
    const int batches = 3;
    for (int b = 0; b < batches; ++b) {
        graph::ComputationGraph cg;
        auto loss = train::buildSuperGraph(
            model, cg, static_cast<std::size_t>(b) * 2, 2);
        handle.fb(model.model(), cg, loss);
    }
    const double loaded =
        device.traffic().loadBytes(gpusim::MemSpace::Weights);
    const double expected =
        model.model().totalWeightMatrixBytes() * batches;
    EXPECT_NEAR(loaded, expected, 1.0)
        << "register caching must load weights exactly once per batch";
}

/** All four baselines agree with each other on the loss sequence. */
TEST(Integration, AllBaselinesAgreeOnLosses)
{
    auto run = [](auto make_executor) {
        gpusim::Device device(gpusim::DeviceSpec{}, kPool);
        common::Rng rng(14);
        data::Vocab vocab(200);
        data::Treebank bank(vocab, 8, rng, 8.0, 4, 12);
        common::Rng prng(4);
        models::RvnnModel model(bank, vocab, 32, device, prng);
        auto executor = make_executor(device);
        std::vector<float> losses;
        for (int step = 0; step < 3; ++step) {
            graph::ComputationGraph cg;
            auto loss = train::buildSuperGraph(
                model, cg, static_cast<std::size_t>(step) * 2, 2);
            losses.push_back(
                executor->trainBatch(model.model(), cg, loss));
        }
        return losses;
    };

    const auto naive = run([](gpusim::Device& d) {
        return std::make_unique<exec::NaiveExecutor>(
            d, gpusim::HostSpec{});
    });
    const auto depth = run([](gpusim::Device& d) {
        return std::make_unique<exec::DepthBatchExecutor>(
            d, gpusim::HostSpec{});
    });
    const auto agenda = run([](gpusim::Device& d) {
        return std::make_unique<exec::AgendaBatchExecutor>(
            d, gpusim::HostSpec{});
    });
    const auto fold = run([](gpusim::Device& d) {
        return std::make_unique<exec::FoldExecutor>(
            d, gpusim::HostSpec{});
    });
    for (std::size_t i = 0; i < naive.size(); ++i) {
        EXPECT_NEAR(naive[i], depth[i], 1e-3);
        EXPECT_NEAR(naive[i], agenda[i], 1e-3);
        EXPECT_NEAR(naive[i], fold[i], 1e-3);
    }
}

/** Timing-only mode must not change simulated durations. */
TEST(Integration, TimingOnlyModeMatchesFunctionalTiming)
{
    auto run = [](bool functional) {
        gpusim::Device device(gpusim::DeviceSpec{}, kPool);
        device.setFunctional(functional);
        common::Rng rng(15);
        data::Vocab vocab(200);
        data::Treebank bank(vocab, 8, rng, 8.0, 4, 12);
        common::Rng prng(5);
        models::TreeLstmModel model(bank, vocab, 32, 48, device, prng);
        vpps::VppsOptions opts;
        opts.rpw = 2;
        vpps::Handle handle(model.model(), device, opts);
        for (int step = 0; step < 2; ++step) {
            graph::ComputationGraph cg;
            auto loss = train::buildSuperGraph(
                model, cg, static_cast<std::size_t>(step) * 2, 2);
            handle.fb(model.model(), cg, loss);
        }
        return handle.stats().wall_us;
    };
    EXPECT_DOUBLE_EQ(run(true), run(false));
}

} // namespace
