/** @file Unit tests for kernel specialization and the JIT cost model
 *  (Section III-A2, Fig 5, Table II). */
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "vpps/codegen.hpp"

namespace {

struct CodegenRig
{
    gpusim::Device device{gpusim::DeviceSpec{}, 64u << 20};
    graph::Model model;
    common::Rng rng{5};

    explicit CodegenRig(std::uint32_t cols, int n_matrices = 3,
                        std::uint32_t rows = 256)
    {
        for (int i = 0; i < n_matrices; ++i)
            model.addWeightMatrix("W" + std::to_string(i), rows, cols);
        model.allocate(device, rng);
    }

    vpps::CompiledKernel
    compile(int rpw = 2, bool grads = true)
    {
        vpps::VppsOptions opts;
        opts.cache_gradients = grads;
        auto plan = vpps::DistributionPlan::buildAuto(
            model, device.spec(), opts, rpw);
        const vpps::KernelSpecializer spec(device.spec());
        return spec.specialize(model, plan);
    }
};

TEST(Codegen, SourceHasLiteralRegisterArray)
{
    CodegenRig rig(256);
    const auto kernel = rig.compile();
    const int regs = kernel.plan.partitionsPerCta() *
                     kernel.plan.regsPerThreadPerPartition();
    // The array size must be a literal compile-time constant --
    // otherwise nvcc would demote it to local memory (Section II).
    EXPECT_NE(kernel.source.find("float reg_cache[" +
                                 std::to_string(regs) + "];"),
              std::string::npos);
}

TEST(Codegen, RoutineCallsCarryTemplateArguments)
{
    CodegenRig rig(256);
    const auto kernel = rig.compile(2);
    // load_rows / mvm instantiations must pass rpw and the per-row
    // iteration count (ceil(256/32) = 8) as template arguments.
    EXPECT_NE(kernel.source.find("load_rows<"), std::string::npos);
    EXPECT_NE(kernel.source.find(", 2, 8>"), std::string::npos);
    EXPECT_NE(kernel.source.find("mvm<2, 8>"), std::string::npos);
}

TEST(Codegen, EveryMatrixGetsSwitchCases)
{
    CodegenRig rig(128, 4);
    const auto kernel = rig.compile();
    for (graph::ParamId m : rig.model.weightMatrices()) {
        EXPECT_NE(kernel.source.find("case MVM_" + std::to_string(m)),
                  std::string::npos);
        EXPECT_NE(
            kernel.source.find("case MVM_T_" + std::to_string(m)),
            std::string::npos);
        EXPECT_NE(
            kernel.source.find("case OUTER_" + std::to_string(m)),
            std::string::npos);
    }
}

TEST(Codegen, GradientRoutinesFollowStrategy)
{
    CodegenRig rig(128);
    const auto cached = rig.compile(2, true);
    EXPECT_NE(cached.source.find("apply_update<"), std::string::npos);
    const auto fallback = rig.compile(2, false);
    EXPECT_EQ(fallback.source.find("case OUTER_"), std::string::npos)
        << "no outer-product cases without cached gradients";
    EXPECT_NE(fallback.source.find("CUBLAS"), std::string::npos);
}

TEST(Codegen, IdenticalShapesShareInstantiations)
{
    CodegenRig same(256, 6);
    CodegenRig mixed(256, 3);
    mixed.model = graph::Model();
    // Rebuild mixed with three distinct shapes.
    mixed.model.addWeightMatrix("A", 256, 128);
    mixed.model.addWeightMatrix("B", 256, 256);
    mixed.model.addWeightMatrix("C", 128, 64);
    common::Rng rng(6);
    gpusim::Device device(gpusim::DeviceSpec{}, 64u << 20);
    mixed.model.allocate(device, rng);
    vpps::VppsOptions opts;
    auto plan = vpps::DistributionPlan::buildAuto(
        mixed.model, device.spec(), opts, 2);
    const vpps::KernelSpecializer spec(device.spec());
    const auto mixed_kernel = spec.specialize(mixed.model, plan);

    const auto same_kernel = same.compile();
    EXPECT_LT(same_kernel.num_instantiations,
              mixed_kernel.num_instantiations)
        << "six identical matrices share one instantiation shape";
}

TEST(Codegen, CompileTimeGrowsWithRowLength)
{
    // Table II's structure: max row length drives NVRTC cost
    // superlinearly (256 -> ~11 s, 512 -> ~28 s, 1024 -> ~74 s).
    CodegenRig c256(256);
    CodegenRig c512(512);
    CodegenRig c1024(1024, 3, 128);
    const double t256 = c256.compile().prog_compile_s;
    const double t512 = c512.compile().prog_compile_s;
    const double t1024 = c1024.compile().prog_compile_s;
    EXPECT_GT(t512, 2.0 * t256);
    EXPECT_GT(t1024, 2.0 * t512);
    EXPECT_NEAR(t256, 11.0, 3.0);
    EXPECT_NEAR(t512, 28.5, 6.0);
    EXPECT_NEAR(t1024, 74.0, 15.0);
}

TEST(Codegen, ModuleLoadTracksProgramCompilation)
{
    CodegenRig rig(256);
    const auto kernel = rig.compile();
    EXPECT_GT(kernel.module_load_s, 0.0);
    EXPECT_LT(kernel.module_load_s, kernel.prog_compile_s);
    EXPECT_NEAR(kernel.module_load_s / kernel.prog_compile_s, 0.64,
                0.08);
}

TEST(Codegen, RequiresAllocatedModel)
{
    graph::Model model;
    model.addWeightMatrix("W", 64, 64);
    gpusim::DeviceSpec spec;
    const vpps::KernelSpecializer specializer(spec);
    vpps::DistributionPlan plan; // placeholder
    EXPECT_DEATH(specializer.specialize(model, plan), "allocated");
}

} // namespace
