/**
 * @file
 * The core guarantee, swept across every application: training any
 * of the seven dynamic nets through the VPPS persistent kernel
 * produces the same losses as the per-node baseline -- and this holds
 * on non-default device geometries (fewer SMs, smaller register
 * files), where the distribution plan and script differ entirely.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "data/ner_corpus.hpp"
#include "data/treebank.hpp"
#include "data/vocab.hpp"
#include "exec/naive_executor.hpp"
#include "models/bigru_tagger.hpp"
#include "models/bilstm_char_tagger.hpp"
#include "models/bilstm_tagger.hpp"
#include "models/rvnn.hpp"
#include "models/td_lstm.hpp"
#include "models/td_rnn.hpp"
#include "models/tree_lstm.hpp"
#include "train/harness.hpp"
#include "vpps/handle.hpp"

namespace {

struct Factory
{
    gpusim::Device device;
    common::Rng data_rng{121};
    data::Vocab vocab{300, 10000};
    data::Treebank bank{vocab, 8, data_rng, 7.0, 4, 10};
    data::NerCorpus corpus{vocab, 8, data_rng, 7.0, 4, 10};
    common::Rng param_rng{122};

    explicit Factory(const gpusim::DeviceSpec& spec)
        : device(spec, 48u << 20)
    {
    }

    std::unique_ptr<models::BenchmarkModel>
    make(const std::string& app)
    {
        if (app == "Tree-LSTM")
            return std::make_unique<models::TreeLstmModel>(
                bank, vocab, 16, 32, device, param_rng);
        if (app == "BiLSTM")
            return std::make_unique<models::BiLstmTagger>(
                corpus, vocab, 16, 24, 16, device, param_rng);
        if (app == "BiLSTMwChar")
            return std::make_unique<models::BiLstmCharTagger>(
                corpus, vocab, 16, 24, 16, 8, device, param_rng);
        if (app == "BiGRU")
            return std::make_unique<models::BiGruTagger>(
                corpus, vocab, 16, 24, 16, device, param_rng);
        if (app == "TD-RNN")
            return std::make_unique<models::TdRnnModel>(
                bank, vocab, 32, device, param_rng);
        if (app == "TD-LSTM")
            return std::make_unique<models::TdLstmModel>(
                bank, vocab, 32, device, param_rng);
        return std::make_unique<models::RvnnModel>(
            bank, vocab, 32, device, param_rng);
    }
};

void
expectVppsMatchesBaseline(const std::string& app,
                          const gpusim::DeviceSpec& spec)
{
    Factory vf(spec), nf(spec);
    auto vm = vf.make(app);
    auto nm = nf.make(app);

    vpps::VppsOptions opts;
    opts.rpw = 2;
    opts.async = false;
    vpps::Handle handle(vm->model(), vf.device, opts);
    exec::NaiveExecutor naive(nf.device, gpusim::HostSpec{});

    for (int step = 0; step < 2; ++step) {
        graph::ComputationGraph cg_v;
        const float lv = handle.fb(
            vm->model(), cg_v,
            train::buildSuperGraph(
                *vm, cg_v, static_cast<std::size_t>(step) * 2, 2));
        graph::ComputationGraph cg_n;
        const float ln = naive.trainBatch(
            nm->model(), cg_n,
            train::buildSuperGraph(
                *nm, cg_n, static_cast<std::size_t>(step) * 2, 2));
        ASSERT_TRUE(std::isfinite(lv));
        EXPECT_NEAR(lv, ln, 2e-3 * std::abs(ln) + 2e-3)
            << app << " step " << step;
    }
}

class AllAppsEquivalenceTest
    : public testing::TestWithParam<const char*>
{
};

std::string
appIdent(const testing::TestParamInfo<const char*>& info)
{
    std::string n = info.param;
    for (auto& c : n)
        if (c == '-')
            c = '_';
    return n;
}

TEST_P(AllAppsEquivalenceTest, OnTitanV)
{
    expectVppsMatchesBaseline(GetParam(), gpusim::DeviceSpec{});
}

TEST_P(AllAppsEquivalenceTest, OnSmallerGpu)
{
    // A hypothetical 20-SM part with 128 KB register files: the
    // distribution spreads rows over far fewer VPPs and the capacity
    // decisions differ, but the math must not.
    gpusim::DeviceSpec small;
    small.num_sms = 20;
    small.regfile_bytes_per_sm = 128 * 1024;
    expectVppsMatchesBaseline(GetParam(), small);
}

INSTANTIATE_TEST_SUITE_P(SevenApps, AllAppsEquivalenceTest,
                         testing::Values("Tree-LSTM", "BiLSTM",
                                         "BiLSTMwChar", "BiGRU",
                                         "TD-RNN", "TD-LSTM", "RvNN"),
                         appIdent);

} // namespace
