/**
 * @file
 * Topology + collective cost model units and the property-based
 * collective-equivalence suite (ISSUE 9): across randomized tensor
 * sizes, replica counts, and link configs, the functional all-reduce
 * result is bitwise independent of the transport algorithm and of
 * how leaves are grouped into replicas, and the modeled comm time
 * matches the closed-form alpha-beta cost exactly (integer
 * arithmetic, no tolerance).
 */
#include <cstring>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "gpusim/topology.hpp"
#include "train/collective.hpp"

namespace {

using gpusim::allGatherCost;
using gpusim::allReduceCost;
using gpusim::broadcastCost;
using gpusim::ceilDiv;
using gpusim::Collective;
using gpusim::defaultLink;
using gpusim::LinkSpec;
using gpusim::LinkType;
using gpusim::linkTransferNs;
using gpusim::ringAllReduceNs;
using gpusim::Topology;
using gpusim::treeAllReduceNs;

TEST(Topology, UniformConnectsEveryPair)
{
    const Topology topo = Topology::uniform(4, LinkType::NVLink);
    EXPECT_EQ(topo.numDevices(), 4u);
    for (std::size_t a = 0; a < 4; ++a)
        for (std::size_t b = 0; b < 4; ++b)
        {
            const LinkSpec* link = topo.link(a, b);
            if (a == b)
                EXPECT_EQ(link, nullptr);
            else
            {
                ASSERT_NE(link, nullptr);
                EXPECT_EQ(link->type, LinkType::NVLink);
            }
        }
}

TEST(Topology, TransferNsIsExactAlphaBeta)
{
    LinkSpec spec;
    spec.type = LinkType::PCIe;
    spec.latency_ns = 5'000;
    spec.bytes_per_us = 12'000;
    const Topology topo = Topology::uniform(2, spec);

    // 12000 bytes at 12000 B/us = 1 us = 1000 ns, plus alpha.
    auto t = topo.transferNs(0, 1, 12'000);
    ASSERT_TRUE(t.ok());
    EXPECT_EQ(t.value(), 5'000u + 1'000u);

    // Ceil semantics: one extra byte costs a full extra... no, an
    // extra ns tick: ceil(12001*1000/12000) = 1001.
    t = topo.transferNs(0, 1, 12'001);
    ASSERT_TRUE(t.ok());
    EXPECT_EQ(t.value(), 5'000u + 1'001u);

    // Zero bytes still pays the latency alpha.
    t = topo.transferNs(0, 1, 0);
    ASSERT_TRUE(t.ok());
    EXPECT_EQ(t.value(), 5'000u);

    // Self-transfer is free.
    t = topo.transferNs(1, 1, 1 << 20);
    ASSERT_TRUE(t.ok());
    EXPECT_EQ(t.value(), 0u);
}

TEST(Topology, ParseBuildsLinksAndRoutes)
{
    auto parsed = Topology::parse("# a two-hop chain\n"
                                  "devices 3\n"
                                  "link 0 1 nvlink\n"
                                  "link 1 2 pcie latency_ns=7000\n"
                                  "route 0 2 via 1\n");
    ASSERT_TRUE(parsed.ok()) << parsed.status().toString();
    const Topology& topo = parsed.value();
    EXPECT_EQ(topo.numDevices(), 3u);
    ASSERT_NE(topo.link(0, 1), nullptr);
    EXPECT_EQ(topo.link(0, 2), nullptr);
    ASSERT_NE(topo.link(2, 1), nullptr);
    EXPECT_EQ(topo.link(2, 1)->latency_ns, 7'000u);

    // Routed transfer sums the hops, in both directions.
    const std::uint64_t hop01 =
        linkTransferNs(*topo.link(0, 1), 64);
    const std::uint64_t hop12 =
        linkTransferNs(*topo.link(1, 2), 64);
    auto t = topo.transferNs(0, 2, 64);
    ASSERT_TRUE(t.ok());
    EXPECT_EQ(t.value(), hop01 + hop12);
    auto back = topo.transferNs(2, 0, 64);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), t.value());
}

TEST(Topology, ParseRoundTripsThroughDescribe)
{
    auto parsed = Topology::parse("devices 3\n"
                                  "link 0 1 nvlink\n"
                                  "link 1 2 nic\n"
                                  "route 0 2 via 1\n");
    ASSERT_TRUE(parsed.ok());
    auto again = Topology::parse(parsed.value().describe());
    ASSERT_TRUE(again.ok()) << again.status().toString();
    EXPECT_EQ(again.value().describe(), parsed.value().describe());
}

TEST(Topology, UnconnectedPairIsUnavailable)
{
    auto parsed = Topology::parse("devices 3\nlink 0 1 nvlink\n");
    ASSERT_TRUE(parsed.ok());
    auto t = parsed.value().transferNs(0, 2, 64);
    ASSERT_FALSE(t.ok());
    EXPECT_EQ(t.status().code(), common::ErrorCode::Unavailable);
}

TEST(AllReduceCost, SingleRankIsFree)
{
    const Topology topo = Topology::uniform(4, LinkType::NVLink);
    for (Collective algo :
         {Collective::RingAllReduce, Collective::TreeAllReduce})
    {
        auto cost = allReduceCost(topo, algo, 1 << 20, 1, 4);
        ASSERT_TRUE(cost.ok());
        EXPECT_EQ(cost.value().total_ns, 0u);
        EXPECT_EQ(cost.value().messages, 0u);
    }
}

TEST(AllReduceCost, RejectsBadRankCounts)
{
    const Topology topo = Topology::uniform(2, LinkType::NVLink);
    EXPECT_FALSE(
        allReduceCost(topo, Collective::RingAllReduce, 64, 0, 1)
            .ok());
    EXPECT_FALSE(
        allReduceCost(topo, Collective::RingAllReduce, 64, 3, 1)
            .ok());
}

TEST(AllReduceCost, MissingLinkSurfacesAsStatus)
{
    // Ranks 0 and 2 must talk in both schedules, but only a 0-1 and
    // a 1-2 link exist and no route bridges them.
    auto parsed = Topology::parse("devices 3\n"
                                  "link 0 1 nvlink\n"
                                  "link 1 2 nvlink\n");
    ASSERT_TRUE(parsed.ok());
    auto ring = allReduceCost(parsed.value(),
                              Collective::RingAllReduce, 4096, 3, 2);
    ASSERT_FALSE(ring.ok());
    EXPECT_EQ(ring.status().code(), common::ErrorCode::Unavailable);
}

/**
 * The modeled time of the stage-simulated schedule must equal the
 * closed-form pipelined alpha-beta cost *exactly* -- randomized over
 * sizes, rank counts, chunkings, and link parameters. Integer
 * arithmetic end to end: EXPECT_EQ, no tolerance.
 */
TEST(AllReduceCost, MatchesClosedFormExactly)
{
    common::Rng rng{20260807};
    for (int trial = 0; trial < 200; ++trial)
    {
        LinkSpec spec;
        spec.type = static_cast<LinkType>(rng.nextInt(0, 2));
        spec.latency_ns =
            static_cast<std::uint64_t>(rng.nextInt(0, 20'000));
        spec.bytes_per_us =
            static_cast<std::uint64_t>(rng.nextInt(1, 200'000));
        const std::size_t ranks =
            static_cast<std::size_t>(rng.nextInt(1, 8));
        const std::size_t chunks =
            static_cast<std::size_t>(rng.nextInt(1, 16));
        const std::uint64_t bytes =
            static_cast<std::uint64_t>(rng.nextInt(0, 1 << 24));
        const Topology topo = Topology::uniform(8, spec);

        auto ring = allReduceCost(topo, Collective::RingAllReduce,
                                  bytes, ranks, chunks);
        ASSERT_TRUE(ring.ok());
        EXPECT_EQ(ring.value().total_ns,
                  ringAllReduceNs(spec, bytes, ranks, chunks))
            << "ranks=" << ranks << " chunks=" << chunks
            << " bytes=" << bytes;

        auto tree = allReduceCost(topo, Collective::TreeAllReduce,
                                  bytes, ranks, chunks);
        ASSERT_TRUE(tree.ok());
        EXPECT_EQ(tree.value().total_ns,
                  treeAllReduceNs(spec, bytes, ranks, chunks))
            << "ranks=" << ranks << " chunks=" << chunks
            << " bytes=" << bytes;

        // The pipelined makespan identity the closed form encodes.
        EXPECT_EQ(ring.value().total_ns,
                  (ring.value().stages + chunks - 1) *
                      ring.value().slot_ns);
    }
}

/**
 * The broadcast and all-gather schedules (the fleet's parameter
 * seeding and sharded-state reassembly) must match their closed
 * forms exactly too, and each must price as the matching half of the
 * corresponding all-reduce: tree broadcast = the tree's fan-out half,
 * ring all-gather = the ring's second (R-1)-stage half.
 */
TEST(CollectiveCostExtras, BroadcastAndAllGatherMatchClosedForms)
{
    common::Rng rng{20260808};
    for (int trial = 0; trial < 200; ++trial)
    {
        LinkSpec spec;
        spec.type = static_cast<LinkType>(rng.nextInt(0, 2));
        spec.latency_ns =
            static_cast<std::uint64_t>(rng.nextInt(0, 20'000));
        spec.bytes_per_us =
            static_cast<std::uint64_t>(rng.nextInt(1, 200'000));
        const std::size_t ranks =
            static_cast<std::size_t>(rng.nextInt(1, 8));
        const std::size_t chunks =
            static_cast<std::size_t>(rng.nextInt(1, 16));
        const std::uint64_t bytes =
            static_cast<std::uint64_t>(rng.nextInt(0, 1 << 24));
        const Topology topo = Topology::uniform(8, spec);

        auto bc = broadcastCost(topo, bytes, ranks, chunks);
        ASSERT_TRUE(bc.ok()) << bc.status().toString();
        EXPECT_EQ(bc.value().total_ns,
                  treeBroadcastNs(spec, bytes, ranks, chunks))
            << "ranks=" << ranks << " chunks=" << chunks
            << " bytes=" << bytes;

        auto ag = allGatherCost(topo, bytes, ranks, chunks);
        ASSERT_TRUE(ag.ok()) << ag.status().toString();
        EXPECT_EQ(ag.value().total_ns,
                  ringAllGatherNs(spec, bytes, ranks, chunks))
            << "ranks=" << ranks << " chunks=" << chunks
            << " bytes=" << bytes;

        // Pipelined-makespan identity for both schedules.
        EXPECT_EQ(bc.value().total_ns,
                  (bc.value().stages + chunks - 1) *
                      bc.value().slot_ns);
        EXPECT_EQ(ag.value().total_ns,
                  (ag.value().stages + chunks - 1) *
                      ag.value().slot_ns);

        if (ranks < 2) continue;
        // Half-of-all-reduce structure: the tree all-reduce is
        // reduce + broadcast (equal stage counts), the ring
        // all-gather is the ring all-reduce's second half.
        auto tree = allReduceCost(topo, Collective::TreeAllReduce,
                                  bytes, ranks, chunks);
        ASSERT_TRUE(tree.ok());
        EXPECT_EQ(tree.value().stages, 2 * bc.value().stages);
        auto ring = allReduceCost(topo, Collective::RingAllReduce,
                                  bytes, ranks, chunks);
        ASSERT_TRUE(ring.ok());
        EXPECT_EQ(ring.value().stages, 2 * ag.value().stages);
    }
}

TEST(CollectiveCostExtras, TrainWrappersDelegateExactly)
{
    // train::paramBroadcastCost / shardedParamAllGatherCost are the
    // serving layer's entry points; they must price identically to
    // the gpusim primitives they wrap.
    const Topology topo =
        Topology::uniform(4, defaultLink(LinkType::NVLink));
    const std::uint64_t bytes = 3u << 20;
    auto bc = train::paramBroadcastCost(topo, bytes, 4, 8);
    auto raw_bc = broadcastCost(topo, bytes, 4, 8);
    ASSERT_TRUE(bc.ok() && raw_bc.ok());
    EXPECT_EQ(bc.value().total_ns, raw_bc.value().total_ns);
    EXPECT_EQ(bc.value().bytes_on_wire,
              raw_bc.value().bytes_on_wire);

    auto ag = train::shardedParamAllGatherCost(topo, bytes, 4, 8);
    auto raw_ag = allGatherCost(topo, bytes, 4, 8);
    ASSERT_TRUE(ag.ok() && raw_ag.ok());
    EXPECT_EQ(ag.value().total_ns, raw_ag.value().total_ns);

    // Degenerate single-rank broadcast is free (the single-node
    // fleet path relies on this).
    auto solo = train::paramBroadcastCost(topo, bytes, 1, 8);
    ASSERT_TRUE(solo.ok());
    EXPECT_EQ(solo.value().total_ns, 0u);
}

/** Cost decreases (or holds) as chunked pipelining deepens until the
 *  per-chunk alpha dominates -- the crossover the bench sweeps. */
TEST(AllReduceCost, PipeliningHidesBandwidthTerm)
{
    const LinkSpec nv = defaultLink(LinkType::NVLink);
    const std::uint64_t bytes = 8u << 20;
    const std::uint64_t unchunked =
        ringAllReduceNs(nv, bytes, 4, 1);
    const std::uint64_t chunked = ringAllReduceNs(nv, bytes, 4, 8);
    EXPECT_LT(chunked, unchunked);
}

std::vector<std::vector<float>>
randomLeaves(common::Rng& rng, std::size_t count, std::size_t len)
{
    std::vector<std::vector<float>> leaves(count);
    for (auto& leaf : leaves)
    {
        leaf.resize(len);
        for (float& v : leaf) v = rng.nextFloat(-1.0f, 1.0f);
    }
    return leaves;
}

bool
bitwiseEqual(const std::vector<float>& a, const std::vector<float>& b)
{
    return a.size() == b.size() &&
           (a.empty() ||
            std::memcmp(a.data(), b.data(),
                        a.size() * sizeof(float)) == 0);
}

/**
 * The replica-count independence property: grouping the M leaves
 * into R contiguous groups (R | M, M a power of two), tree-reducing
 * each group, then tree-reducing the partials yields bit-for-bit the
 * same result as one global tree over all M leaves -- because each
 * group's tree IS an internal node of the global tree. This is the
 * algebra that lets R replicas pre-reduce their own microbatches
 * without perturbing the arithmetic.
 */
TEST(CollectiveEquivalence, GroupedPartialsMatchGlobalTreeBitwise)
{
    common::Rng rng{31337};
    for (int trial = 0; trial < 50; ++trial)
    {
        const std::size_t m = 8; // the driver's fixed decomposition
        const std::size_t len =
            static_cast<std::size_t>(rng.nextInt(1, 3000));
        const auto leaves = randomLeaves(rng, m, len);
        const std::vector<float> global =
            train::reduceVectors(leaves);

        for (std::size_t replicas : {1u, 2u, 4u, 8u})
        {
            const std::size_t group = m / replicas;
            std::vector<std::vector<float>> partials;
            for (std::size_t r = 0; r < replicas; ++r)
            {
                const std::vector<std::vector<float>> mine(
                    leaves.begin() +
                        static_cast<std::ptrdiff_t>(r * group),
                    leaves.begin() +
                        static_cast<std::ptrdiff_t>((r + 1) * group));
                partials.push_back(train::reduceVectors(mine));
            }
            const std::vector<float> combined =
                train::reduceVectors(partials);
            EXPECT_TRUE(bitwiseEqual(combined, global))
                << "replicas=" << replicas << " len=" << len;
        }
    }
}

/**
 * Transport independence: the functional all-reduce result is the
 * canonical tree sum whatever algorithm is priced, so "ring" ==
 * "tree" == the single-device sum, bitwise, for any leaf count 1-8
 * (not just powers of two) -- the cost model and the arithmetic
 * never touch.
 */
TEST(CollectiveEquivalence, RingTreeAndSingleDeviceAgreeBitwise)
{
    common::Rng rng{77};
    for (int trial = 0; trial < 50; ++trial)
    {
        const std::size_t count =
            static_cast<std::size_t>(rng.nextInt(1, 8));
        const std::size_t len =
            static_cast<std::size_t>(rng.nextInt(1, 2000));
        const auto leaves = randomLeaves(rng, count, len);

        // The single source of arithmetic truth...
        const std::vector<float> single =
            train::reduceVectors(leaves);
        // ...is what both "algorithms" return by construction; the
        // algorithms differ only in the cost model, which performs
        // no float operations at all. Re-running the reduction per
        // algorithm checks it is a pure function of the leaves.
        for (Collective algo :
             {Collective::RingAllReduce, Collective::TreeAllReduce})
        {
            const Topology topo =
                Topology::uniform(8, LinkType::NVLink);
            auto cost = allReduceCost(topo, algo, len * 4, count, 4);
            ASSERT_TRUE(cost.ok());
            const std::vector<float> again =
                train::reduceVectors(leaves);
            EXPECT_TRUE(bitwiseEqual(again, single));
        }
    }
}

TEST(CollectiveEquivalence, ScalarTreeMatchesVectorTree)
{
    common::Rng rng{9};
    for (int trial = 0; trial < 50; ++trial)
    {
        const std::size_t count =
            static_cast<std::size_t>(rng.nextInt(1, 8));
        std::vector<float> scalars(count);
        std::vector<std::vector<float>> vectors(count);
        for (std::size_t i = 0; i < count; ++i)
        {
            scalars[i] = rng.nextFloat(-5.0f, 5.0f);
            vectors[i] = {scalars[i]};
        }
        const float s = train::reduceScalars(scalars);
        const std::vector<float> v = train::reduceVectors(vectors);
        ASSERT_EQ(v.size(), 1u);
        EXPECT_EQ(std::memcmp(&s, v.data(), sizeof(float)), 0);
    }
}

} // namespace
