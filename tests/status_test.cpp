/**
 * @file
 * Unit tests of the structured-error layer (common::Status /
 * common::Result), the deterministic fault injector, and the
 * error-channel allocation path -- the building blocks the recovery
 * policies in vpps::Handle are made of.
 */
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <string>

#include "common/status.hpp"
#include "gpusim/device_memory.hpp"
#include "gpusim/faults.hpp"

namespace {

using common::ErrorCode;
using common::Result;
using common::Status;

TEST(Status, DefaultIsOkAndFree)
{
    Status ok;
    EXPECT_TRUE(ok.ok());
    EXPECT_EQ(ok.code(), ErrorCode::Ok);
    EXPECT_EQ(ok.toString(), "ok");
}

TEST(Status, FailureCarriesDiagnostics)
{
    Status st = Status::failure(ErrorCode::HungVpp, "lost signal")
                    .withVpp(7)
                    .withPc(42)
                    .withBarrier(3)
                    .withAttempts(2);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), ErrorCode::HungVpp);
    EXPECT_EQ(st.error().vpp, 7);
    EXPECT_EQ(st.error().pc, 42);
    EXPECT_EQ(st.error().barrier, 3);
    EXPECT_EQ(st.error().attempts, 2);
    const std::string s = st.toString();
    EXPECT_NE(s.find("hung_vpp"), std::string::npos) << s;
    EXPECT_NE(s.find("lost signal"), std::string::npos) << s;
    EXPECT_NE(s.find("vpp=7"), std::string::npos) << s;
    EXPECT_NE(s.find("barrier=3"), std::string::npos) << s;
}

TEST(Status, ToStringOmitsUnsetFields)
{
    Status st = Status::failure(ErrorCode::OutOfMemory, "pool full");
    const std::string s = st.toString();
    EXPECT_EQ(s.find("vpp="), std::string::npos) << s;
    EXPECT_EQ(s.find("pc="), std::string::npos) << s;
    EXPECT_EQ(s.find("barrier="), std::string::npos) << s;
}

TEST(Status, ErrorCodeNamesAreExhaustiveAndDistinct)
{
    // kNumErrorCodes tracks the enum; every value must map to its
    // own name, and none may fall through to the "unknown" default.
    // A new ErrorCode without a switch case fails here instead of
    // surfacing as an unreadable diagnostic in a fault log.
    std::set<std::string> seen;
    for (int c = 0; c < common::kNumErrorCodes; ++c) {
        const char* name =
            common::errorCodeName(static_cast<ErrorCode>(c));
        ASSERT_NE(name, nullptr) << "code " << c;
        const std::string s(name);
        EXPECT_GT(s.size(), 0u) << "code " << c;
        EXPECT_NE(s, "unknown")
            << "code " << c << " fell through the name switch";
        EXPECT_TRUE(seen.insert(s).second)
            << "code " << c << " reuses the name \"" << s << "\"";
    }
    EXPECT_EQ(common::errorCodeName(
                  static_cast<ErrorCode>(common::kNumErrorCodes)),
              std::string("unknown"))
        << "out-of-range codes must hit the default";
}

TEST(Status, NetworkErrorCodeNamesAreWireStable)
{
    // The network fault domain's codes render under these exact
    // names in fault logs and bench JSON; renames are a breaking
    // change for downstream parsers, so pin them.
    EXPECT_EQ(std::string(
                  common::errorCodeName(ErrorCode::LinkDown)),
              "link_down");
    EXPECT_EQ(std::string(
                  common::errorCodeName(ErrorCode::Partitioned)),
              "partitioned");
    EXPECT_EQ(std::string(
                  common::errorCodeName(ErrorCode::FencedEpoch)),
              "fenced_epoch");
}

TEST(Result, HoldsValueOrStatus)
{
    Result<int> good(41);
    ASSERT_TRUE(good.ok());
    EXPECT_EQ(good.value(), 41);

    Result<int> bad(
        Status::failure(ErrorCode::MalformedScript, "bad opcode"));
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.error().code, ErrorCode::MalformedScript);
    Status taken = bad.takeStatus();
    EXPECT_EQ(taken.code(), ErrorCode::MalformedScript);
}

TEST(FaultInjector, SameSeedSameFaultSequence)
{
    const auto plan = gpusim::FaultPlan::uniform(0.3, 99);
    gpusim::FaultInjector a(plan), b(plan);
    std::vector<int> eligible = {0, 1, 2, 3};
    for (int i = 0; i < 200; ++i) {
        EXPECT_EQ(a.corruptScriptTransfer(), b.corruptScriptTransfer());
        EXPECT_EQ(a.corruptWeightLoad(8), b.corruptWeightLoad(8));
        EXPECT_EQ(a.failLaunch(true), b.failLaunch(true));
        EXPECT_EQ(a.drawHang(eligible), b.drawHang(eligible));
        EXPECT_EQ(a.failBatchAlloc(), b.failBatchAlloc());
        EXPECT_EQ(a.corruptLossReadback(), b.corruptLossReadback());
    }
    EXPECT_EQ(a.injected().total(), b.injected().total());
    EXPECT_GT(a.injected().total(), 0u);
}

TEST(FaultInjector, ZeroRatesNeverFire)
{
    gpusim::FaultInjector inj(gpusim::FaultPlan{});
    std::vector<int> eligible = {0, 1};
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(inj.corruptScriptTransfer());
        EXPECT_FALSE(inj.corruptWeightLoad(4).has_value());
        EXPECT_FALSE(inj.failLaunch(true));
        EXPECT_FALSE(inj.drawHang(eligible).has_value());
        EXPECT_FALSE(inj.failBatchAlloc());
        EXPECT_FALSE(inj.corruptLossReadback());
    }
    EXPECT_EQ(inj.injected().total(), 0u);
}

TEST(FaultInjector, PermanentLaunchFaultsSpareTheFallback)
{
    gpusim::FaultPlan plan;
    plan.permanent_launch_faults = true;
    gpusim::FaultInjector inj(plan);
    EXPECT_TRUE(inj.failLaunch(/*gradients_cached=*/true));
    EXPECT_TRUE(inj.failLaunch(true));
    EXPECT_FALSE(inj.failLaunch(/*gradients_cached=*/false));
    EXPECT_EQ(inj.injected().launch_failures, 2u);
}

TEST(FaultInjector, HangNeedsAnEligibleVpp)
{
    gpusim::FaultInjector inj(gpusim::FaultPlan::uniform(1.0, 5));
    EXPECT_FALSE(inj.drawHang({}).has_value());
    EXPECT_EQ(inj.injected().hangs, 0u);
    const auto hung = inj.drawHang({3});
    ASSERT_TRUE(hung.has_value());
    EXPECT_EQ(*hung, 3);
    EXPECT_EQ(inj.injected().hangs, 1u);
}

TEST(FaultPlan, FromEnvRoundTrip)
{
    unsetenv("VPPS_FAULT_RATE");
    EXPECT_FALSE(gpusim::FaultPlan::fromEnv().has_value());

    setenv("VPPS_FAULT_RATE", "0.25", 1);
    setenv("VPPS_FAULT_SEED", "77", 1);
    const auto plan = gpusim::FaultPlan::fromEnv();
    ASSERT_TRUE(plan.has_value());
    EXPECT_DOUBLE_EQ(plan->script_ecc_rate, 0.25);
    EXPECT_DOUBLE_EQ(plan->hang_rate, 0.25);
    EXPECT_EQ(plan->seed, 77u);
    EXPECT_FALSE(plan->permanent_launch_faults);

    setenv("VPPS_FAULT_RATE", "0", 1);
    EXPECT_FALSE(gpusim::FaultPlan::fromEnv().has_value());
    unsetenv("VPPS_FAULT_RATE");
    unsetenv("VPPS_FAULT_SEED");
}

TEST(DeviceMemory, TryAllocateReportsExhaustionWithoutAborting)
{
    gpusim::DeviceMemory mem(16);
    const auto a = mem.tryAllocate(10, gpusim::MemSpace::Workspace);
    ASSERT_TRUE(a.has_value());
    EXPECT_FALSE(
        mem.tryAllocate(10, gpusim::MemSpace::Workspace).has_value());
    const auto b = mem.tryAllocate(6, gpusim::MemSpace::Workspace);
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(mem.used(), 16u);
}

} // namespace
